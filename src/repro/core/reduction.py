"""The Densest-k-Subgraph → IMC reduction of Theorem 1, executable.

The paper proves IMC's inapproximability by reducing DkS to IMC: every
undirected edge ``e = {a, b}`` becomes a 2-node community
``C_e = {a_e, b_e}`` with threshold 2; all copies of the same original
node form a strongly connected cluster ``U_a`` of weight-1 edges, so
seeding any one copy activates them all. Then ``e(S_D) = c(S_I)`` —
the number of edges induced by a DkS solution equals the benefit of
the lifted IMC solution — which transfers DkS's ETH hardness to IMC.

This module makes the construction concrete (useful for tests, for
teaching, and for generating adversarial IMC instances whose optima are
known from small DkS instances), with the lift/project maps of the
proof's two observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.communities.structure import Community, CommunityStructure
from repro.errors import SolverError
from repro.graph.analysis import forward_reachable
from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class DkSReduction:
    """The IMC instance produced from a DkS instance.

    - ``graph``: the deterministic (all weight-1) IMC graph ``G_I``;
    - ``communities``: one threshold-2, benefit-1 community per edge;
    - ``copies_of``: original node -> its copy ids (the cluster U_a);
    - ``corresponding``: copy id -> original node.
    """

    graph: DiGraph
    communities: CommunityStructure
    copies_of: Dict[int, Tuple[int, ...]]
    corresponding: Dict[int, int]
    edges: Tuple[Tuple[int, int], ...]

    def lift(self, dks_solution: Iterable[int]) -> List[int]:
        """Observation 1: one arbitrary copy per selected DkS node."""
        lifted = []
        for a in dks_solution:
            copies = self.copies_of.get(a)
            if not copies:
                raise SolverError(
                    f"DkS node {a} has no copies (it is isolated and "
                    "does not appear in the IMC instance)"
                )
            lifted.append(copies[0])
        return lifted

    def project(self, imc_solution: Iterable[int]) -> List[int]:
        """Observation 2: map each seed copy back to its original node."""
        return sorted({self.corresponding[v] for v in imc_solution})

    def benefit(self, imc_seeds: Iterable[int]) -> float:
        """Exact ``c(S)`` on the deterministic instance (weights are 1,
        so a single forward reachability computes it)."""
        active = forward_reachable(self.graph, list(imc_seeds))
        total = 0.0
        for community in self.communities:
            covered = sum(1 for m in community.members if m in active)
            if covered >= community.threshold:
                total += community.benefit
        return total


def induced_edge_count(
    edges: Sequence[Tuple[int, int]], nodes: Iterable[int]
) -> int:
    """``e(S)`` — edges of the DkS graph with both endpoints in ``S``."""
    node_set = set(nodes)
    return sum(1 for a, b in edges if a in node_set and b in node_set)


def dks_to_imc(
    edges: Sequence[Tuple[int, int]],
) -> DkSReduction:
    """Build the Theorem 1 IMC instance from an undirected edge list.

    ``edges`` are pairs of original node labels (ints). Self-loops and
    duplicate edges are rejected — DkS is defined on simple graphs.
    """
    seen: Set[FrozenSet[int]] = set()
    normalized: List[Tuple[int, int]] = []
    for a, b in edges:
        if a == b:
            raise SolverError(f"DkS graphs are simple; self-loop at {a}")
        key = frozenset((a, b))
        if key in seen:
            raise SolverError(f"duplicate edge {{{a}, {b}}}")
        seen.add(key)
        normalized.append((a, b))
    if not normalized:
        raise SolverError("the DkS instance has no edges")

    copies_of: Dict[int, List[int]] = {}
    corresponding: Dict[int, int] = {}
    communities: List[Community] = []
    next_id = 0

    def new_copy(original: int) -> int:
        nonlocal next_id
        copy_id = next_id
        next_id += 1
        copies_of.setdefault(original, []).append(copy_id)
        corresponding[copy_id] = original
        return copy_id

    for a, b in normalized:
        a_copy = new_copy(a)
        b_copy = new_copy(b)
        communities.append(
            Community(members=(a_copy, b_copy), threshold=2, benefit=1.0)
        )

    graph = DiGraph(next_id)
    # Strongly connect each U_a with a weight-1 directed cycle — the
    # cheapest strongly connected gadget.
    for copies in copies_of.values():
        if len(copies) < 2:
            continue
        for i, copy_id in enumerate(copies):
            graph.add_edge(copy_id, copies[(i + 1) % len(copies)], 1.0)

    return DkSReduction(
        graph=graph,
        communities=CommunityStructure(communities),
        copies_of={a: tuple(c) for a, c in copies_of.items()},
        corresponding=corresponding,
        edges=tuple(normalized),
    )
