"""Core contribution: MAXR solvers and the IMCAF framework.

MAXR (Definition 3 of the paper): given a collection ``R`` of RIC
samples, find ``k`` seeds maximizing the number of influenced samples —
equivalently the estimate ``ĉ_R``. The solvers implemented here are the
paper's three algorithms plus the compound MB:

- :class:`~repro.core.ubg.UBG` — Upper Bound Greedy (sandwich with the
  submodular ``ν_R``), ratio ``(ĉ(S_ν)/ν(S_ν))(1 - 1/e)``;
- :class:`~repro.core.maf.MAF` — Most Appearance First, ratio
  ``⌊k/h⌋ / r``;
- :class:`~repro.core.bt.BT` — bounded-threshold algorithm,
  ratio ``(1 - 1/e)/k^{d-1}`` for thresholds bounded by ``d``;
- :class:`~repro.core.bt.MB` — best of MAF and BT, ratio
  ``Θ(√((1-1/e)/r))``, tight to the inapproximability bound.

:func:`~repro.core.framework.solve_imc` wires any of them into the
stop-and-stare IMCAF loop (Algorithm 5) for an ``α(1-ε)`` guarantee
with probability ``1 - δ``.
"""

from repro.core.bt import BT, MB
from repro.core.budgeted import (
    BudgetedUBG,
    budgeted_lazy_greedy_nu,
    degree_proportional_costs,
    uniform_costs,
)
from repro.core.framework import EstimateResult, IMCResult, estimate_benefit, solve_imc
from repro.core.greedy import greedy_maxr, lazy_greedy_nu
from repro.core.maf import MAF
from repro.core.bitset_engine import BitsetCoverage
from repro.core.flat_engine import FlatCoverage
from repro.core.objective import CoverageState, evaluate_benefit
from repro.core.ratios import (
    bt_ratio,
    inapproximability_bound,
    maf_ratio,
    mb_ratio,
    sandwich_ratio,
)
from repro.core.curvature import (
    NonSubmodularityProfile,
    probe_nonsubmodularity,
    submodularity_violation_rate,
    weak_submodularity_gamma,
)
from repro.core.reduction import DkSReduction, dks_to_imc, induced_edge_count
from repro.core.solution import SeedSelection
from repro.core.static_bound import StaticIMCResult, solve_imc_static
from repro.core.ubg import UBG, GreedyC

__all__ = [
    "CoverageState",
    "BitsetCoverage",
    "FlatCoverage",
    "evaluate_benefit",
    "SeedSelection",
    "greedy_maxr",
    "lazy_greedy_nu",
    "UBG",
    "GreedyC",
    "MAF",
    "BT",
    "MB",
    "solve_imc",
    "solve_imc_static",
    "StaticIMCResult",
    "estimate_benefit",
    "IMCResult",
    "EstimateResult",
    "DkSReduction",
    "dks_to_imc",
    "induced_edge_count",
    "NonSubmodularityProfile",
    "probe_nonsubmodularity",
    "submodularity_violation_rate",
    "weak_submodularity_gamma",
    "BudgetedUBG",
    "budgeted_lazy_greedy_nu",
    "uniform_costs",
    "degree_proportional_costs",
    "maf_ratio",
    "bt_ratio",
    "mb_ratio",
    "sandwich_ratio",
    "inapproximability_bound",
]
