"""Solver result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class SeedSelection:
    """A seed set chosen by a MAXR/IMC solver.

    ``objective`` is the solver's own estimate of its objective at
    return time (``ĉ_R(S)`` for MAXR solvers); ``metadata`` carries
    solver-specific diagnostics such as the sandwich ratio for UBG or
    which arm won for MAF/MB. ``truncated`` marks a best-so-far result
    returned because a :class:`~repro.utils.retry.Deadline` expired
    before the solver finished — the seed set is valid but may be
    smaller/weaker than an unbounded run's.
    """

    seeds: Tuple[int, ...]
    objective: float
    solver: str
    metadata: Dict[str, Any] = field(default_factory=dict)
    truncated: bool = False

    def __post_init__(self) -> None:
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError("seed set contains duplicates")

    @property
    def k(self) -> int:
        """Number of seeds selected."""
        return len(self.seeds)

    def seed_set(self) -> set:
        """The seeds as a set."""
        return set(self.seeds)
