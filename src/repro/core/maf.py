"""Most Appearance First (MAF) — Algorithm 3.

MAF builds two candidate seed sets from frequency statistics of the
sample pool and keeps the better one under ``ĉ_R``:

- ``S_1`` — walk communities in descending order of how often they are
  the *source* of a sample; for each, put ``h`` of its members into the
  seed set while the budget allows. ``S_1`` alone carries the
  ``⌊k/h⌋ / r`` guarantee of Theorem 3.
- ``S_2`` — the ``k`` nodes that *touch* the most samples. No guarantee
  (the paper exhibits a counterexample) but empirically strong.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.core.objective import evaluate_benefit
from repro.core.solution import SeedSelection
from repro.errors import SolverError
from repro.obs import trace
from repro.rng import SeedLike, make_rng
from repro.sampling.pool import RICSamplePool
from repro.utils.retry import Deadline, as_deadline
from repro.utils.validation import check_positive


class MAF:
    """Most Appearance First MAXR solver (the paper's fastest method)."""

    name = "MAF"

    def __init__(
        self,
        seed: SeedLike = None,
        candidates: Optional[Iterable[int]] = None,
        engine: str = "reference",
        deadline: Optional[Deadline] = None,
    ) -> None:
        #: RNG for the "randomly picks h nodes in C" step of Alg. 3.
        self._rng = make_rng(seed)
        #: Arithmetic backend for the final arm evaluation
        #: ("reference"/"bitset"/"flat" — identical floats either way,
        #: see :func:`repro.core.objective.evaluate_benefit`).
        self.engine = engine
        #: Restrict seeding to these nodes (None = all nodes). S1 skips
        #: communities without enough eligible members; S2 ranks only
        #: eligible nodes.
        self.candidates: Optional[Set[int]] = (
            set(candidates) if candidates is not None else None
        )
        #: Optional time bound (Deadline or seconds). MAF is the
        #: package's fastest solver, so the poll points are coarse: on
        #: expiry after the S1 arm, the S2 arm is skipped and the
        #: selection flagged ``truncated``.
        self.deadline: Optional[Deadline] = as_deadline(deadline)

    def alpha(self, pool: RICSamplePool, k: int) -> float:
        """Theorem 3 ratio ``⌊k/h⌋ / r``, capped at 1 (0 when ``k < h``)."""
        communities = pool.sampler.communities
        h = communities.max_threshold
        return min(1.0, (k // h) / communities.r)

    def _build_s1(self, pool: RICSamplePool, k: int) -> List[int]:
        communities = pool.sampler.communities
        counts = pool.community_counts()
        # Descending frequency; ties by community index for determinism.
        order = sorted(counts, key=lambda idx: (-counts[idx], idx))
        s1: List[int] = []
        chosen = set()
        for community_index in order:
            community = communities[community_index]
            if len(s1) + community.threshold > k:
                continue
            members = [
                m
                for m in community.members
                if m not in chosen
                and (self.candidates is None or m in self.candidates)
            ]
            if len(members) < community.threshold:
                continue
            picks = self._rng.sample(members, community.threshold)
            s1.extend(picks)
            chosen.update(picks)
        return s1

    def _build_s2(self, pool: RICSamplePool, k: int) -> List[int]:
        nodes = pool.touching_nodes()
        if self.candidates is not None:
            nodes = [v for v in nodes if v in self.candidates]
        nodes.sort(key=lambda v: (-pool.touch_count(v), v))
        return nodes[:k]

    def solve(self, pool: RICSamplePool, k: int) -> SeedSelection:
        """Run Algorithm 3 on the pool."""
        check_positive(k, "k", SolverError)
        deadline = self.deadline
        with trace.span("maf/s1_communities", k=k, num_samples=len(pool)):
            s1 = self._build_s1(pool, k)
        if deadline is not None and s1 and deadline.expired():
            s2: List[int] = []
        else:
            with trace.span("maf/s2_nodes", k=k, num_samples=len(pool)):
                s2 = self._build_s2(pool, k)
        value_1 = evaluate_benefit(pool, s1, self.engine)
        value_2 = evaluate_benefit(pool, s2, self.engine)
        if value_1 >= value_2:
            winner, value, arm = s1, value_1, "S1-communities"
        else:
            winner, value, arm = s2, value_2, "S2-nodes"
        return SeedSelection(
            seeds=tuple(winner),
            objective=value,
            solver=self.name,
            metadata={
                "arm": arm,
                "value_s1": value_1,
                "value_s2": value_2,
                "num_samples": len(pool),
            },
            truncated=deadline is not None and deadline.expired(),
        )

    def __call__(self, pool: RICSamplePool, k: int) -> SeedSelection:
        return self.solve(pool, k)
