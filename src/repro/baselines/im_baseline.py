"""The ``IM`` baseline: maximize spread, then measure community benefit.

"IM selects k nodes that maximize the influence spread. Then we
estimate their expected benefit on influenced communities."
(Section VI-A.) Backed by the RIS solver in :mod:`repro.im`.
"""

from __future__ import annotations

from typing import List

from repro.graph.digraph import DiGraph
from repro.im.ris_im import ris_im
from repro.rng import SeedLike


def im_seeds(
    graph: DiGraph,
    k: int,
    epsilon: float = 0.2,
    delta: float = 0.2,
    seed: SeedLike = None,
    max_samples: int = 100_000,
) -> List[int]:
    """Seeds of the classic-IM baseline (community-blind)."""
    seeds, _ = ris_im(
        graph,
        k,
        epsilon=epsilon,
        delta=delta,
        seed=seed,
        max_samples=max_samples,
    )
    return seeds
