"""High Beneficial Connection (HBC) baseline.

HBC scores each node by the benefit-weighted strength of its outgoing
connections:

``B(u) = Σ_{v ∈ N⁺(u)} w(u, v) · b_{C(v)} / h_{C(v)}``

(the paper writes ``N⁻(u)`` but defines it as "u's out-coming
neighbors"; the out-neighbour reading is the one consistent with the
diffusion direction and is used here). Nodes in no community contribute
nothing. The top ``k`` scorers are returned.
"""

from __future__ import annotations

from typing import Dict, List

from repro.communities.structure import CommunityStructure
from repro.errors import SolverError
from repro.graph.digraph import DiGraph
from repro.utils.validation import check_seed_budget


def beneficial_connection(
    graph: DiGraph, communities: CommunityStructure, node: int
) -> float:
    """``B(node)`` — the HBC score of a single node."""
    score = 0.0
    for edge in graph.out_edges(node):
        community_index = communities.community_of(edge.target)
        if community_index is None:
            continue
        community = communities[community_index]
        score += edge.weight * community.benefit / community.threshold
    return score


def hbc_seeds(
    graph: DiGraph, communities: CommunityStructure, k: int
) -> List[int]:
    """The ``k`` nodes with the highest beneficial connection."""
    check_seed_budget(k, graph.num_nodes, SolverError)
    communities.validate_against(graph.num_nodes)
    scores: Dict[int, float] = {
        v: beneficial_connection(graph, communities, v) for v in graph.nodes()
    }
    return sorted(graph.nodes(), key=lambda v: (-scores[v], v))[:k]
