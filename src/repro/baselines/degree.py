"""Degree and random seed baselines (sanity anchors for experiments)."""

from __future__ import annotations

from typing import List

from repro.errors import SolverError
from repro.graph.analysis import max_degree_nodes
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng
from repro.utils.validation import check_seed_budget


def high_degree_seeds(graph: DiGraph, k: int) -> List[int]:
    """The ``k`` highest out-degree nodes."""
    check_seed_budget(k, graph.num_nodes, SolverError)
    return max_degree_nodes(graph, k, direction="out")


def random_seeds(graph: DiGraph, k: int, seed: SeedLike = None) -> List[int]:
    """``k`` uniformly random distinct nodes."""
    check_seed_budget(k, graph.num_nodes, SolverError)
    rng = make_rng(seed)
    return sorted(rng.sample(range(graph.num_nodes), k))
