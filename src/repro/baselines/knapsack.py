"""Knapsack-like (KS) baseline.

KS treats each community's activation threshold as the *cost* of
influencing it and its benefit as the value, then solves the resulting
0/1 knapsack with capacity ``k`` exactly by dynamic programming
(``O(r·k)``). For every selected community, its ``h_i`` cheapest seeds
(the members themselves) enter the seed set. KS ignores the network
topology and the diffusion model entirely — the paper includes it to
show how much that costs.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.communities.structure import CommunityStructure
from repro.errors import SolverError
from repro.utils.validation import check_positive


def knapsack_communities(
    communities: CommunityStructure, budget: int
) -> List[int]:
    """Indices of the benefit-maximal community set with total
    threshold cost at most ``budget`` (exact 0/1 knapsack DP)."""
    check_positive(budget, "budget", SolverError)
    r = communities.r
    costs = communities.thresholds()
    values = communities.benefits()
    # dp[w] = best value using capacity w; choice tracking for recovery.
    dp = [0.0] * (budget + 1)
    take = [[False] * (budget + 1) for _ in range(r)]
    for i in range(r):
        cost, value = costs[i], values[i]
        if cost > budget:
            continue
        for w in range(budget, cost - 1, -1):
            candidate = dp[w - cost] + value
            if candidate > dp[w]:
                dp[w] = candidate
                take[i][w] = True
    chosen: List[int] = []
    w = budget
    for i in range(r - 1, -1, -1):
        if take[i][w]:
            chosen.append(i)
            w -= costs[i]
    chosen.reverse()
    return chosen


def ks_seeds(
    communities: CommunityStructure, k: int
) -> List[int]:
    """Seed set of the KS baseline: ``h_i`` members of each selected
    community (members with the smallest ids, deterministically)."""
    selected = knapsack_communities(communities, k)
    seeds: List[int] = []
    for index in selected:
        community = communities[index]
        members = sorted(community.members)[: community.threshold]
        seeds.extend(members)
    return seeds
