"""Heuristic baselines from Section VI-A of the paper.

- :func:`hbc_seeds` — High Beneficial Connection,
- :func:`ks_seeds` — Knapsack-like community selection,
- :func:`im_seeds` — classic influence maximization (spread objective),
- :func:`high_degree_seeds` / :func:`random_seeds` — sanity baselines.
"""

from repro.baselines.degree import high_degree_seeds, random_seeds
from repro.baselines.hbc import beneficial_connection, hbc_seeds
from repro.baselines.im_baseline import im_seeds
from repro.baselines.knapsack import knapsack_communities, ks_seeds

__all__ = [
    "hbc_seeds",
    "beneficial_connection",
    "ks_seeds",
    "knapsack_communities",
    "im_seeds",
    "high_degree_seeds",
    "random_seeds",
]
