"""repro — Influence Maximization at the Community level (IMC).

A complete, from-scratch reproduction of *"Influence Maximization at
Community Level: A New Challenge with Non-submodularity"* (ICDCS 2019):
the IMC problem, RIC sampling (Algorithm 1), the UBG / MAF / BT / MB
MAXR solvers, the IMCAF stop-and-stare framework (Algorithm 5), the
paper's baselines, and every substrate they depend on (probabilistic
graphs, IC/LT diffusion, Louvain community detection, synthetic
datasets, estimators).

Quickstart::

    from repro import (
        load_dataset, louvain_communities, build_structure,
        constant_thresholds, UBG, solve_imc, BenefitEvaluator,
    )

    dataset = load_dataset("facebook", scale=0.4, seed=1)
    blocks = louvain_communities(dataset.graph, seed=1)
    communities = build_structure(
        blocks, size_cap=8, threshold_policy=constant_thresholds(2)
    )
    result = solve_imc(dataset.graph, communities, k=10, solver=UBG(), seed=1)
    evaluate = BenefitEvaluator(dataset.graph, communities, seed=1)
    print(result.selection.seeds, evaluate(result.selection.seeds))
"""

from repro.baselines import (
    hbc_seeds,
    high_degree_seeds,
    im_seeds,
    ks_seeds,
    random_seeds,
)
from repro.communities import (
    Community,
    CommunityStructure,
    apply_size_cap,
    build_structure,
    constant_thresholds,
    fractional_thresholds,
    label_propagation_communities,
    load_structure,
    louvain_communities,
    modularity,
    population_benefits,
    random_partition,
    save_structure,
    unit_benefits,
)
from repro.core import (
    BT,
    MAF,
    MB,
    UBG,
    BitsetCoverage,
    CoverageState,
    FlatCoverage,
    evaluate_benefit,
    DkSReduction,
    GreedyC,
    IMCResult,
    SeedSelection,
    StaticIMCResult,
    dks_to_imc,
    estimate_benefit,
    greedy_maxr,
    induced_edge_count,
    lazy_greedy_nu,
    solve_imc,
    solve_imc_static,
)
from repro.datasets import dataset_names, dataset_statistics, load_dataset
from repro.diffusion import (
    BenefitEvaluator,
    community_benefit_exact,
    community_benefit_monte_carlo,
    sample_live_edge_graph,
    simulate_ic,
    simulate_lt,
    spread_monte_carlo,
)
from repro.errors import (
    CommunityError,
    DatasetError,
    DeadlineExceededError,
    EstimationError,
    GraphError,
    ReproError,
    SamplingError,
    SolverError,
    WorkerCrashError,
)
from repro.graph import (
    DiGraph,
    FrozenDiGraph,
    assign_uniform_weights,
    assign_weighted_cascade,
    barabasi_albert_graph,
    erdos_renyi_graph,
    forest_fire_graph,
    from_edge_list,
    from_undirected_edge_list,
    planted_partition_graph,
    read_edge_list,
    watts_strogatz_graph,
    write_edge_list,
)
from repro.im import celf_im, ris_im
from repro.sampling import (
    ParallelRICSampler,
    RICSample,
    RICSamplePool,
    RICSampler,
    RRSampler,
)
from repro.utils.faults import Fault, FaultInjected, FaultInjector
from repro.utils.retry import Deadline, RetryPolicy, TimeBudget

__version__ = "1.0.0"

__all__ = [
    # graph
    "DiGraph",
    "FrozenDiGraph",
    "from_edge_list",
    "from_undirected_edge_list",
    "assign_weighted_cascade",
    "assign_uniform_weights",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "planted_partition_graph",
    "forest_fire_graph",
    "read_edge_list",
    "write_edge_list",
    # communities
    "Community",
    "CommunityStructure",
    "louvain_communities",
    "label_propagation_communities",
    "random_partition",
    "save_structure",
    "load_structure",
    "modularity",
    "apply_size_cap",
    "build_structure",
    "constant_thresholds",
    "fractional_thresholds",
    "population_benefits",
    "unit_benefits",
    # diffusion
    "simulate_ic",
    "simulate_lt",
    "sample_live_edge_graph",
    "BenefitEvaluator",
    "community_benefit_monte_carlo",
    "community_benefit_exact",
    "spread_monte_carlo",
    # sampling
    "RICSample",
    "RICSampler",
    "ParallelRICSampler",
    "RICSamplePool",
    "RRSampler",
    # core
    "BitsetCoverage",
    "CoverageState",
    "FlatCoverage",
    "evaluate_benefit",
    "SeedSelection",
    "greedy_maxr",
    "lazy_greedy_nu",
    "UBG",
    "GreedyC",
    "MAF",
    "BT",
    "MB",
    "solve_imc",
    "solve_imc_static",
    "StaticIMCResult",
    "estimate_benefit",
    "IMCResult",
    "DkSReduction",
    "dks_to_imc",
    "induced_edge_count",
    # im + baselines
    "ris_im",
    "celf_im",
    "hbc_seeds",
    "ks_seeds",
    "im_seeds",
    "high_degree_seeds",
    "random_seeds",
    # datasets
    "load_dataset",
    "dataset_names",
    "dataset_statistics",
    # errors
    "ReproError",
    "GraphError",
    "CommunityError",
    "SamplingError",
    "SolverError",
    "EstimationError",
    "DatasetError",
    "WorkerCrashError",
    "DeadlineExceededError",
    # robustness
    "RetryPolicy",
    "Deadline",
    "TimeBudget",
    "Fault",
    "FaultInjected",
    "FaultInjector",
    "__version__",
]
