"""Dataset substrate: synthetic stand-ins for the paper's SNAP datasets.

The paper evaluates on five SNAP networks (Table I). This environment
has no network access, so each dataset is replaced by a seeded synthetic
generator matched on directedness, scale ratio of edges to nodes, and
degree-distribution family — the properties the IMC algorithms are
sensitive to. The substitution is documented per dataset in the spec's
``substitution`` field and in DESIGN.md.
"""

from repro.datasets.registry import (
    DATASETS,
    Dataset,
    DatasetSpec,
    dataset_names,
    dataset_statistics,
    load_dataset,
)

__all__ = [
    "Dataset",
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "load_dataset",
    "dataset_statistics",
]
