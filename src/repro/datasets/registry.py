"""Registry of synthetic stand-in datasets (Table I).

Each spec records the paper's original statistics and how the stand-in
is generated. ``load_dataset(name, scale=...)`` builds the graph at a
fraction of the reference size (default scales are laptop-friendly) and
applies the paper's weighted-cascade edge probabilities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import DatasetError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    barabasi_albert_graph,
    copying_model_graph,
    forest_fire_graph,
    planted_partition_graph,
)
from repro.graph.weights import assign_weighted_cascade
from repro.rng import SeedLike, derive_seed


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one Table-I dataset and its stand-in."""

    name: str
    directed: bool
    paper_nodes: int
    paper_edges: int
    reference_nodes: int
    generator: Callable[[int, SeedLike], DiGraph]
    substitution: str


@dataclass(frozen=True)
class Dataset:
    """A loaded dataset: the weighted graph plus its provenance."""

    name: str
    graph: DiGraph
    directed: bool
    spec: DatasetSpec

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges


def _facebook_like(n: int, seed: SeedLike) -> DiGraph:
    # Facebook ego-net: small, undirected, very dense (avg degree ~160
    # counting both arc directions). Preferential attachment with a
    # large m reproduces density + heavy tail.
    m = max(2, round(0.054 * n))  # 747 nodes / 60.05K und. edges -> m ~ 40
    return barabasi_albert_graph(n, m, directed=False, seed=seed)


def _wikivote_like(n: int, seed: SeedLike) -> DiGraph:
    # Wiki-Vote: directed, avg out-degree ~14.6, heavy-tailed in-degree
    # (a few admins receive most votes) — the copying model's signature.
    return copying_model_graph(n, out_degree=15, copy_probability=0.6, seed=seed)


def _epinions_like(n: int, seed: SeedLike) -> DiGraph:
    # Epinions trust graph: directed, avg degree ~6.7, bursty growth.
    return forest_fire_graph(
        n, forward_probability=0.44, backward_probability=0.3, seed=seed
    )


def _dblp_like(n: int, seed: SeedLike) -> DiGraph:
    # DBLP co-authorship: undirected with pronounced community structure
    # (papers = cliques). A planted partition over mid-sized blocks with
    # sparse cross links matches avg degree ~6.6 (both directions).
    block_size = 10
    num_blocks = max(1, n // block_size)
    sizes = [block_size] * num_blocks
    remainder = n - block_size * num_blocks
    if remainder:
        sizes.append(remainder)
    p_in = 0.55
    p_out = min(1.0, 1.2 / n)
    graph, _ = planted_partition_graph(
        sizes, p_in=p_in, p_out=p_out, directed=False, seed=seed
    )
    return graph


def _pokec_like(n: int, seed: SeedLike) -> DiGraph:
    # Pokec: directed friendship graph, avg out-degree ~19.
    return copying_model_graph(n, out_degree=19, copy_probability=0.5, seed=seed)


DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="facebook",
            directed=False,
            paper_nodes=747,
            paper_edges=60_050,
            reference_nodes=747,
            generator=_facebook_like,
            substitution=(
                "SNAP ego-Facebook -> Barabási–Albert (m≈0.054n, undirected): "
                "matches node count, density and heavy-tailed degrees"
            ),
        ),
        DatasetSpec(
            name="wikivote",
            directed=True,
            paper_nodes=7_100,
            paper_edges=103_600,
            reference_nodes=1_400,
            generator=_wikivote_like,
            substitution=(
                "SNAP Wiki-Vote -> copying model (out-degree 15): matches "
                "directedness, avg degree ~14.6 and skewed in-degrees; "
                "scaled to 1/5 size"
            ),
        ),
        DatasetSpec(
            name="epinions",
            directed=True,
            paper_nodes=76_000,
            paper_edges=508_800,
            reference_nodes=3_000,
            generator=_epinions_like,
            substitution=(
                "SNAP soc-Epinions1 -> forest fire (0.44/0.30): matches "
                "directedness and avg degree ~6.7; scaled to laptop size"
            ),
        ),
        DatasetSpec(
            name="dblp",
            directed=False,
            paper_nodes=317_000,
            paper_edges=1_050_000,
            reference_nodes=4_000,
            generator=_dblp_like,
            substitution=(
                "SNAP com-DBLP -> planted partition (blocks of 10, dense "
                "inside, sparse across): matches undirectedness, avg degree "
                "~6.6 and strong community structure; scaled to laptop size"
            ),
        ),
        DatasetSpec(
            name="pokec",
            directed=True,
            paper_nodes=1_600_000,
            paper_edges=30_600_000,
            reference_nodes=8_000,
            generator=_pokec_like,
            substitution=(
                "SNAP soc-Pokec -> copying model (out-degree 19): matches "
                "directedness and avg out-degree ~19; scaled to laptop size"
            ),
        ),
    )
}


def dataset_names() -> List[str]:
    """All registered dataset names, in Table-I order."""
    return list(DATASETS)


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: Optional[int] = 7,
    weighted_cascade: bool = True,
) -> Dataset:
    """Build the stand-in for ``name`` at ``scale`` × its reference size.

    ``scale`` < 1 shrinks the graph proportionally (minimum 50 nodes so
    the generators stay well-defined). ``weighted_cascade`` applies the
    paper's ``w(u,v) = 1/d_in(v)`` probabilities (disable to get the
    raw structural graph).
    """
    spec = DATASETS.get(name)
    if spec is None:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        )
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    n = max(50, round(spec.reference_nodes * scale))
    graph = spec.generator(n, derive_seed(seed, name))
    if weighted_cascade:
        assign_weighted_cascade(graph)
    return Dataset(name=name, graph=graph, directed=spec.directed, spec=spec)


def dataset_statistics(
    scale: float = 1.0, seed: Optional[int] = 7
) -> List[Dict[str, object]]:
    """Rows of the Table-I reproduction: per dataset, the paper's stats
    next to the stand-in's realised node/edge counts."""
    rows: List[Dict[str, object]] = []
    for name, spec in DATASETS.items():
        dataset = load_dataset(name, scale=scale, seed=seed)
        rows.append(
            {
                "name": name,
                "type": "Directed" if spec.directed else "Undirected",
                "paper_nodes": spec.paper_nodes,
                "paper_edges": spec.paper_edges,
                "nodes": dataset.num_nodes,
                "edges": dataset.num_edges,
                "substitution": spec.substitution,
            }
        )
    return rows
