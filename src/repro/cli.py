"""Command-line interface.

Four subcommands cover the common workflows::

    python -m repro datasets                 # Table I stand-in registry
    python -m repro table1 --scale 0.2      # regenerate Table I
    python -m repro solve --dataset facebook --solver UBG --k 10
    python -m repro figure fig5 --dataset facebook
    python -m repro bench --record   # kernel perf trajectory
    python -m repro report run.manifest.json   # render a run manifest
    python -m repro serve --datasets facebook --port 8765
    python -m repro cluster --datasets facebook --replicas 3

``solve`` and ``compare`` accept ``--trace-out``/``--metrics-out`` to
record structured spans/metrics plus a run manifest through
``repro.obs`` (see ``docs/observability.md``); results are identical
with or without instrumentation. ``--metrics-format prom`` switches the
metrics dump to the Prometheus text format, ``--monitor`` attaches a
convergence monitor (pure observer), and ``--ci-width W`` turns it into
adaptive sampling that stops once ĉ(S)'s relative CI width reaches
``W``.

All randomness is controlled by ``--seed``; every command prints plain
ASCII tables (the same renderer the benchmark harness uses).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.communities.louvain import louvain_communities
from repro.communities.thresholds import (
    build_structure,
    constant_thresholds,
    fractional_thresholds,
)
from repro.core.bt import BT, MB
from repro.core.framework import solve_imc
from repro.core.maf import MAF
from repro.core.ubg import UBG, GreedyC
from repro.datasets.registry import DATASETS, load_dataset
from repro.diffusion.simulator import BenefitEvaluator
from repro.errors import ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    fig4_community_structure,
    fig5_benefit_regular,
    fig6_benefit_bounded,
    fig7_runtime,
    fig8_ubg_ratio,
)
from repro.experiments.reporting import ascii_table, format_series
from repro.experiments.tables import table1_text
from repro.rng import derive_seed


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Influence Maximization at the Community level (IMC) — "
            "ICDCS 2019 reproduction"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table I dataset stand-ins")

    table1 = sub.add_parser("table1", help="regenerate Table I")
    table1.add_argument("--scale", type=float, default=0.2)
    table1.add_argument("--seed", type=int, default=7)

    solve = sub.add_parser("solve", help="solve an IMC instance")
    solve.add_argument("--dataset", default="facebook", choices=list(DATASETS))
    solve.add_argument("--scale", type=float, default=0.2)
    solve.add_argument(
        "--solver",
        default="UBG",
        choices=["UBG", "MAF", "BT", "MB", "GreedyC"],
    )
    solve.add_argument("--k", type=int, default=10)
    solve.add_argument(
        "--threshold", default="bounded", choices=["bounded", "fractional"]
    )
    solve.add_argument("--size-cap", type=int, default=8)
    solve.add_argument("--epsilon", type=float, default=0.2)
    solve.add_argument("--delta", type=float, default=0.2)
    solve.add_argument("--seed", type=int, default=7)
    solve.add_argument("--max-samples", type=int, default=20_000)
    solve.add_argument("--model", default="ic", choices=["ic", "lt"])
    solve.add_argument(
        "--engine",
        default="serial",
        choices=["serial", "parallel"],
        help="RIC sampling engine (parallel fans batches out to workers)",
    )
    solve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --engine parallel (default: all cores)",
    )
    solve.add_argument(
        "--coverage-engine",
        default=None,
        choices=["reference", "bitset", "flat"],
        help=(
            "coverage/evaluation backend for the solver (identical "
            "results, different speed; default: the solver's own)"
        ),
    )
    solve.add_argument(
        "--freeze",
        action="store_true",
        help=(
            "freeze the graph into its CSR snapshot before solving — "
            "array-native sampling kernels, byte-identical results"
        ),
    )
    solve.add_argument(
        "--eval-trials",
        type=int,
        default=500,
        help="Monte-Carlo trials for the final c(S) estimate (0 skips)",
    )
    solve.add_argument(
        "--report",
        action="store_true",
        help="print the per-community outcome breakdown (top 15 rows)",
    )
    solve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help=(
            "wall-clock budget in seconds; on expiry the best-so-far "
            "seed set is returned flagged as truncated"
        ),
    )
    solve.add_argument(
        "--ci-width",
        type=float,
        default=None,
        metavar="W",
        help=(
            "adaptive sampling: stop once the relative CI width of "
            "ĉ(S) is <= W (e.g. 0.05); attaches a ConvergenceMonitor "
            "and records the estimator block in the manifest"
        ),
    )
    solve.add_argument(
        "--min-samples",
        type=int,
        default=100,
        metavar="N",
        help=(
            "minimum pool samples before --ci-width may stop the run "
            "(default: 100)"
        ),
    )
    solve.add_argument(
        "--monitor",
        action="store_true",
        help=(
            "attach a ConvergenceMonitor without a stopping rule: "
            "records the ĉ(S) trajectory and pool diagnostics, results "
            "byte-identical to an unmonitored run"
        ),
    )
    _add_observability_flags(solve)

    compare = sub.add_parser(
        "compare", help="run several algorithms on one instance"
    )
    compare.add_argument("--dataset", default="facebook", choices=list(DATASETS))
    compare.add_argument("--scale", type=float, default=0.15)
    compare.add_argument(
        "--algorithms",
        default="UBG,MAF,HBC,KS,IM",
        help="comma-separated algorithm names",
    )
    compare.add_argument(
        "--k", default="5,10", help="comma-separated seed budgets"
    )
    compare.add_argument(
        "--threshold", default="fractional", choices=["bounded", "fractional"]
    )
    compare.add_argument("--pool-size", type=int, default=600)
    compare.add_argument("--eval-trials", type=int, default=150)
    compare.add_argument("--seed", type=int, default=7)
    compare.add_argument(
        "--trials",
        type=int,
        default=1,
        help="repeat with derived seeds and report mean ± CI",
    )
    compare.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help=(
            "crash-safe checkpoint file: completed algorithm/k runs "
            "are recorded atomically so a killed comparison can resume"
        ),
    )
    compare.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from an existing --checkpoint file (without this "
            "flag an existing checkpoint is discarded and restarted)"
        ),
    )
    _add_observability_flags(compare)

    bench = sub.add_parser(
        "bench",
        help="run the kernel microbenchmarks (optionally record them)",
    )
    bench.add_argument(
        "--samples",
        type=int,
        default=10_000,
        help="RIC pool size for the benchmark workload",
    )
    bench.add_argument(
        "--k", type=int, default=10, help="seed budget for selection timing"
    )
    bench.add_argument(
        "--record",
        action="store_true",
        help=(
            "append the run to the perf-regression trajectory "
            "(benchmarks/BENCH_kernels.json)"
        ),
    )
    bench.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="trajectory artifact to append to (default: the repo's)",
    )
    bench.add_argument(
        "--allow-dirty",
        action="store_true",
        help=(
            "record even from a dirty git working tree (the stamped "
            "SHA will not describe the measured code)"
        ),
    )

    report = sub.add_parser(
        "report",
        help=(
            "render a run manifest, trace JSONL, or metrics dump as "
            "plain text"
        ),
    )
    report.add_argument(
        "path",
        help=(
            "a *.manifest.json, trace *.jsonl, or metrics JSONL "
            "produced by --trace-out/--metrics-out — or, with "
            "--cluster, a cluster run directory"
        ),
    )
    report.add_argument(
        "--cluster",
        action="store_true",
        help=(
            "treat PATH as a cluster --run-dir and stitch its event "
            "journals, traces, manifest and fleet metrics into one "
            "timeline report"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help="run the always-on shard server (see docs/serving.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument(
        "--datasets",
        default="facebook",
        help="comma-separated datasets to serve, one scenario each",
    )
    serve.add_argument("--scale", type=float, default=0.2)
    serve.add_argument(
        "--threshold", default="bounded", choices=["bounded", "fractional"]
    )
    serve.add_argument("--size-cap", type=int, default=8)
    serve.add_argument("--model", default="ic", choices=["ic", "lt"])
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--pool-size",
        type=int,
        default=600,
        help="warm sample-pool target per shard",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sampler worker processes per shard (default: all cores)",
    )
    serve.add_argument(
        "--round-size",
        type=int,
        default=256,
        help="samples per synchronous merge round (bounds shard memory)",
    )
    serve.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        help=(
            "evict cold shards once the summed pool footprint exceeds "
            "this many MiB (default: no eviction)"
        ),
    )
    serve.add_argument(
        "--solver",
        default="UBG",
        choices=["UBG", "MAF", "BT", "MB", "GreedyC"],
        help="default solver for requests that do not name one",
    )
    serve.add_argument(
        "--warm",
        action="store_true",
        help="build and warm every scenario's shard before serving",
    )
    _add_observability_flags(serve)

    cluster = sub.add_parser(
        "cluster",
        help=(
            "run the supervised multi-replica serving cluster "
            "(see docs/serving.md)"
        ),
    )
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument(
        "--port",
        type=int,
        default=8765,
        help="router front-door port (replicas bind ephemeral ports)",
    )
    cluster.add_argument(
        "--replicas",
        type=int,
        default=3,
        help="replica server subprocesses to supervise",
    )
    cluster.add_argument(
        "--replica-ports",
        default=None,
        metavar="P1,P2,...",
        help=(
            "comma-separated fixed replica ports (default: ephemeral, "
            "stable across restarts either way)"
        ),
    )
    cluster.add_argument(
        "--datasets",
        default="facebook",
        help="comma-separated datasets to serve, one scenario each",
    )
    cluster.add_argument("--scale", type=float, default=0.2)
    cluster.add_argument(
        "--threshold", default="bounded", choices=["bounded", "fractional"]
    )
    cluster.add_argument("--size-cap", type=int, default=8)
    cluster.add_argument("--model", default="ic", choices=["ic", "lt"])
    cluster.add_argument("--seed", type=int, default=7)
    cluster.add_argument("--pool-size", type=int, default=600)
    cluster.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sampler worker processes per shard (default: all cores)",
    )
    cluster.add_argument("--round-size", type=int, default=256)
    cluster.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        help="per-replica cold-shard eviction budget in MiB",
    )
    cluster.add_argument(
        "--solver",
        default="UBG",
        choices=["UBG", "MAF", "BT", "MB", "GreedyC"],
    )
    cluster.add_argument(
        "--warm",
        action="store_true",
        help="each replica warms every scenario before serving",
    )
    cluster.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.5,
        help="seconds between supervisor health probes",
    )
    cluster.add_argument(
        "--heartbeat-failures",
        type=int,
        default=3,
        help="consecutive failed probes before a replica is restarted",
    )
    cluster.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds a draining server waits for in-flight requests",
    )
    cluster.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive forward failures that open a circuit breaker",
    )
    cluster.add_argument(
        "--breaker-reset-seconds",
        type=float,
        default=1.0,
        help="cooldown before an open breaker admits a half-open probe",
    )
    cluster.add_argument(
        "--run-dir",
        default=None,
        help=(
            "cluster observability run directory: event journals, "
            "per-process traces, the topology manifest and the final "
            "fleet metrics land here (render with "
            "'python -m repro report --cluster RUNDIR')"
        ),
    )
    cluster.add_argument(
        "--no-keepalive",
        action="store_true",
        help=(
            "disable router->replica connection pooling (one fresh "
            "connection per forward, as before PR 10)"
        ),
    )
    _add_observability_flags(cluster)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument(
        "name", choices=["fig4", "fig5", "fig6", "fig7", "fig8"]
    )
    figure.add_argument("--dataset", default="facebook", choices=list(DATASETS))
    figure.add_argument("--scale", type=float, default=0.15)
    figure.add_argument("--pool-size", type=int, default=600)
    figure.add_argument("--eval-trials", type=int, default=150)
    figure.add_argument("--seed", type=int, default=7)

    return parser


def _add_observability_flags(subparser) -> None:
    subparser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help=(
            "stream structured spans to this JSONL file and write a "
            "run manifest next to it (see docs/observability.md)"
        ),
    )
    subparser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="dump the run's counters/gauges/histograms to this file",
    )
    subparser.add_argument(
        "--metrics-format",
        default="json",
        choices=["json", "prom"],
        help=(
            "--metrics-out format: typed JSONL records (json, default) "
            "or Prometheus text exposition (prom)"
        ),
    )


def _with_observability(args, command: str, run) -> int:
    """Run ``run(extras)`` inside an instrumentation session when
    requested.

    With neither ``--trace-out`` nor ``--metrics-out`` this is a plain
    call — the no-op gate stays closed and results are byte-identical.
    Otherwise a session wraps the command and a manifest is written next
    to the trace (or metrics) artifact. ``extras`` is a dict the command
    may fill with extra manifest blocks (currently ``"estimator"``, the
    convergence-monitor summary of a monitored solve).
    """
    extras: dict = {}
    if not (args.trace_out or args.metrics_out):
        return run(extras)
    from repro import obs

    with obs.session(
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        metrics_format=getattr(args, "metrics_format", "json"),
    ) as recorder:
        code = run(extras)
    artifacts = {}
    if args.trace_out:
        artifacts["trace"] = args.trace_out
    if args.metrics_out:
        artifacts["metrics"] = args.metrics_out
    manifest = obs.build_manifest(
        command,
        config={
            key: value
            for key, value in vars(args).items()
            if key != "command"
        },
        seeds={"seed": args.seed},
        spans=recorder.spans,
        metrics_snapshot=recorder.metrics,
        artifacts=artifacts,
        estimator=extras.get("estimator"),
    )
    path = obs.write_manifest(
        manifest, obs.manifest_path_for(args.trace_out or args.metrics_out)
    )
    print(f"manifest: {path}")
    return code


def _make_solver(name: str, seed: Optional[int]):
    if name == "UBG":
        return UBG()
    if name == "MAF":
        return MAF(seed=seed)
    if name == "BT":
        return BT()
    if name == "MB":
        return MB(seed=seed)
    return GreedyC()


def _cmd_datasets() -> int:
    rows = [
        (
            spec.name,
            "Directed" if spec.directed else "Undirected",
            spec.paper_nodes,
            spec.paper_edges,
            spec.substitution,
        )
        for spec in DATASETS.values()
    ]
    print(
        ascii_table(
            ["Data", "Type", "Paper nodes", "Paper edges", "Stand-in"], rows
        )
    )
    return 0


def _cmd_table1(args) -> int:
    print(table1_text(scale=args.scale, seed=args.seed))
    return 0


def _cmd_solve(args, extras: Optional[dict] = None) -> int:
    dataset = load_dataset(
        args.dataset, scale=args.scale, seed=derive_seed(args.seed, "dataset")
    )
    graph = dataset.graph
    blocks = louvain_communities(graph, seed=derive_seed(args.seed, "louvain"))
    policy = (
        constant_thresholds(2)
        if args.threshold == "bounded"
        else fractional_thresholds(0.5)
    )
    communities = build_structure(
        blocks, size_cap=args.size_cap, threshold_policy=policy
    )
    if args.freeze:
        graph = graph.freeze()
    print(
        f"instance: {args.dataset} n={graph.num_nodes} m={graph.num_edges} "
        f"r={communities.r} b={communities.total_benefit:g} "
        f"h_max={communities.max_threshold}"
    )
    solver = _make_solver(args.solver, derive_seed(args.seed, "solver"))
    profiles: List[dict] = []

    def _collect_profile(info: dict) -> None:
        if info.get("sampling_profile"):
            profiles.append(info["sampling_profile"])

    convergence = None
    if args.ci_width is not None:
        from repro.obs.diagnostics import ConvergenceCriterion

        convergence = ConvergenceCriterion(
            ci_width=args.ci_width, min_samples=args.min_samples
        )
    elif args.monitor:
        from repro.obs.diagnostics import ConvergenceMonitor

        convergence = ConvergenceMonitor()

    result = solve_imc(
        graph,
        communities,
        k=args.k,
        solver=solver,
        epsilon=args.epsilon,
        delta=args.delta,
        seed=args.seed,
        max_samples=args.max_samples,
        model=args.model,
        engine=args.engine,
        workers=args.workers,
        coverage_engine=args.coverage_engine,
        progress=_collect_profile,
        deadline=args.deadline,
        convergence=convergence,
    )
    print(f"seeds: {sorted(result.selection.seeds)}")
    if result.selection.truncated:
        print(
            f"note: deadline of {args.deadline:g}s expired — seeds are "
            "the best found in budget, not a completed run"
        )
    if profiles:
        last = profiles[-1]
        util = last["worker_utilization"]
        print(
            f"sampling: {last['mode']} engine, "
            f"{last['samples_per_sec']:.0f} samples/s, "
            f"{last['workers']} workers, batch={last['batch_size']}"
            + (f", utilization={util:.0%}" if util is not None else "")
        )
    print(
        f"stopped_by={result.stopped_by} samples={result.num_samples} "
        f"iterations={result.iterations} alpha={result.alpha:.4f}"
    )
    print(f"pool objective c_R(S) = {result.selection.objective:.3f}")
    estimator = result.metadata.get("estimator")
    if estimator is not None:
        if extras is not None:
            extras["estimator"] = estimator
        mean = estimator.get("mean")
        halfwidth = estimator.get("halfwidth")
        relative = estimator.get("relative_width")
        if mean is not None and halfwidth is not None:
            print(
                f"estimator: ĉ(S) = {mean:.3f} ± {halfwidth:.3f}"
                + (
                    f" (relative width {relative:.4f})"
                    if relative is not None
                    else ""
                )
                + f" from {estimator.get('samples', 0)} samples"
            )
        if result.stopped_by == "converged":
            print(
                f"note: adaptive sampling converged at "
                f"{result.num_samples} samples "
                f"(cap was {args.max_samples})"
            )
    if args.eval_trials > 0:
        evaluate = BenefitEvaluator(
            graph,
            communities,
            num_trials=args.eval_trials,
            model=args.model,
            seed=derive_seed(args.seed, "eval"),
        )
        print(
            f"Monte-Carlo c(S) = {evaluate(result.selection.seeds):.3f} "
            f"(of b = {communities.total_benefit:g})"
        )
    if args.report:
        from repro.experiments.solution_report import (
            render_report,
            solution_report,
        )

        outcomes = solution_report(
            graph,
            communities,
            result.selection.seeds,
            num_trials=max(args.eval_trials, 100),
            seed=derive_seed(args.seed, "report"),
        )
        print(render_report(outcomes, top=15))
    return 0


def _cmd_compare(args) -> int:
    algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    k_values = [int(k) for k in args.k.split(",") if k.strip()]
    config = ExperimentConfig(
        dataset=args.dataset,
        scale=args.scale,
        threshold=args.threshold,
        pool_size=args.pool_size,
        eval_trials=args.eval_trials,
        seed=args.seed,
    )
    if args.trials <= 1:
        from repro.experiments.checkpoint import as_checkpoint
        from repro.experiments.runner import run_suite

        store = as_checkpoint(args.checkpoint, resume=args.resume)
        results = run_suite(config, algorithms, k_values, checkpoint=store)
        if store is not None:
            print(store.report().summary())
        rows = []
        for name in algorithms:
            for run in results[name]:
                rows.append(
                    (name, run.k, run.benefit, run.runtime_seconds)
                )
        print(
            ascii_table(["algorithm", "k", "c(S) (MC)", "runtime (s)"], rows)
        )
    else:
        if args.checkpoint:
            print(
                "note: --checkpoint applies to single-trial comparisons "
                "only; ignoring it",
                file=sys.stderr,
            )
        from repro.experiments.stats import repeat_suite

        cells = repeat_suite(config, algorithms, k_values, trials=args.trials)
        rows = [
            (
                cell.algorithm,
                cell.k,
                f"{cell.mean_benefit:.3f} ± {cell.ci_half_width:.3f}",
                cell.mean_runtime,
            )
            for cell in cells
        ]
        print(
            ascii_table(
                ["algorithm", "k", f"c(S) mean ± CI ({args.trials} trials)", "runtime (s)"],
                rows,
            )
        )
    return 0


def _cmd_bench(args) -> int:
    from repro.experiments.kernel_bench import (
        format_entry,
        record_entry,
        run_kernel_bench,
    )

    if args.record:
        from repro.obs import require_clean_tree

        require_clean_tree(args.allow_dirty)
    entry = run_kernel_bench(samples=args.samples, k=args.k)
    print(format_entry(entry))
    if args.record:
        data = record_entry(entry, args.output)
        from repro.experiments.kernel_bench import default_artifact_path

        path = args.output or default_artifact_path()
        print(
            f"recorded entry {len(data['trajectory'])} in {path}"
        )
    return 0


def _cmd_report(args) -> int:
    if getattr(args, "cluster", False):
        from repro.obs import render_cluster_report

        print(render_cluster_report(args.path))
        return 0
    from repro.obs import render_report

    print(render_report(args.path))
    return 0


def _cmd_serve(args) -> int:
    from repro.serving import (
        ShardApp,
        ShardStore,
        default_scenarios,
        run_server,
    )

    names = [d.strip() for d in args.datasets.split(",") if d.strip()]
    scenarios = default_scenarios(
        names,
        scale=args.scale,
        threshold=args.threshold,
        size_cap=args.size_cap,
        model=args.model,
        seed=args.seed,
        pool_size=args.pool_size,
    )
    budget = (
        int(args.memory_budget_mb * 1024 * 1024)
        if args.memory_budget_mb
        else None
    )
    store = ShardStore(
        scenarios,
        workers=args.workers,
        round_size=args.round_size,
        memory_budget_bytes=budget,
    )
    app = ShardApp(
        store, default_solver=args.solver, trace_path=args.trace_out
    )
    try:
        if args.warm:
            for name in store.scenario_names():
                shard = store.get(name)
                with shard.lock:
                    shard.warm()
                print(f"warmed {name}: {len(shard.pool)} samples")
        return run_server(app, args.host, args.port)
    finally:
        app.close()


def _cmd_cluster(args) -> int:
    from repro.serving import ClusterConfig, default_scenarios, run_cluster

    names = [d.strip() for d in args.datasets.split(",") if d.strip()]
    scenarios = default_scenarios(
        names,
        scale=args.scale,
        threshold=args.threshold,
        size_cap=args.size_cap,
        model=args.model,
        seed=args.seed,
        pool_size=args.pool_size,
    )
    budget = (
        int(args.memory_budget_mb * 1024 * 1024)
        if args.memory_budget_mb
        else None
    )
    replica_ports = None
    if args.replica_ports:
        replica_ports = tuple(
            int(p.strip()) for p in args.replica_ports.split(",") if p.strip()
        )
    config = ClusterConfig(
        scenarios,
        replicas=args.replicas,
        host=args.host,
        router_port=args.port,
        replica_ports=replica_ports,
        workers=args.workers,
        round_size=args.round_size,
        memory_budget_bytes=budget,
        default_solver=args.solver,
        warm=args.warm,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_failures=args.heartbeat_failures,
        drain_timeout=args.drain_timeout,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_seconds=args.breaker_reset_seconds,
        run_dir=args.run_dir,
        pool_connections=not args.no_keepalive,
    )
    return run_cluster(config)


def _cmd_figure(args) -> int:
    config = ExperimentConfig(
        dataset=args.dataset,
        scale=args.scale,
        pool_size=args.pool_size,
        eval_trials=args.eval_trials,
        seed=args.seed,
    )
    if args.name == "fig4":
        results = fig4_community_structure(
            dataset=args.dataset, base_config=config
        )
        algorithms = sorted(next(iter(results.values())))
        rows = [
            [f"{formation}/s={s}"]
            + [results[(formation, s)][a] for a in algorithms]
            for (formation, s) in sorted(results)
        ]
        print(ascii_table(["instance"] + algorithms, rows))
    elif args.name in ("fig5", "fig6"):
        driver = fig5_benefit_regular if args.name == "fig5" else fig6_benefit_bounded
        k_values = (5, 10, 20, 30)
        results = driver(
            dataset=args.dataset, k_values=k_values, base_config=config
        )
        series = {
            name: [run.benefit for run in runs] for name, runs in results.items()
        }
        print(format_series("k", list(k_values), series))
    elif args.name == "fig7":
        k_values = (5, 10, 20)
        results = fig7_runtime(
            dataset=args.dataset, k_values=k_values, base_config=config
        )
        series = {
            name: [run.runtime_seconds for run in runs]
            for name, runs in results.items()
        }
        print(format_series("k", list(k_values), series))
    else:
        k_values = (2, 5, 10, 25)
        results = fig8_ubg_ratio(
            dataset=args.dataset, k_values=k_values, base_config=config
        )
        print(format_series("k", list(k_values), results))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "datasets":
            return _cmd_datasets()
        if args.command == "table1":
            return _cmd_table1(args)
        if args.command == "solve":
            return _with_observability(
                args, "solve", lambda extras: _cmd_solve(args, extras)
            )
        if args.command == "compare":
            return _with_observability(
                args, "compare", lambda extras: _cmd_compare(args)
            )
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "serve":
            return _with_observability(
                args, "serve", lambda extras: _cmd_serve(args)
            )
        if args.command == "cluster":
            return _with_observability(
                args, "cluster", lambda extras: _cmd_cluster(args)
            )
        if args.command == "figure":
            return _cmd_figure(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 1  # pragma: no cover - unreachable with required subparsers


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
