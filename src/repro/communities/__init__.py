"""Community substrate: structures, detection, thresholds and benefits.

The IMC problem takes a collection of *disjoint* communities, each with
an activation threshold ``h_i`` and a benefit ``b_i``. This package
provides the :class:`~repro.communities.structure.CommunityStructure`
data model, a from-scratch Louvain detector (the paper's partitioner),
the Random partition baseline, the size-cap splitting rule (``s``), and
the paper's threshold/benefit policies.
"""

from repro.communities.io import (
    load_structure,
    save_structure,
    structure_from_dict,
    structure_to_dict,
)
from repro.communities.greedy_modularity import greedy_modularity_communities
from repro.communities.label_propagation import label_propagation_communities
from repro.communities.metrics import (
    adjusted_rand_index,
    normalized_mutual_information,
    partition_agreement,
)
from repro.communities.louvain import louvain_communities
from repro.communities.modularity import modularity
from repro.communities.random_partition import random_partition
from repro.communities.structure import Community, CommunityStructure
from repro.communities.thresholds import (
    apply_size_cap,
    build_structure,
    constant_thresholds,
    fractional_thresholds,
    population_benefits,
    unit_benefits,
)

__all__ = [
    "Community",
    "CommunityStructure",
    "louvain_communities",
    "label_propagation_communities",
    "greedy_modularity_communities",
    "random_partition",
    "modularity",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "partition_agreement",
    "save_structure",
    "load_structure",
    "structure_to_dict",
    "structure_from_dict",
    "apply_size_cap",
    "build_structure",
    "constant_thresholds",
    "fractional_thresholds",
    "population_benefits",
    "unit_benefits",
]
