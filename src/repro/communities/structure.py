"""Community data model.

``Com = {C_i}`` is a collection of *disjoint* node sets. Each community
carries an activation threshold ``h_i`` (it is *influenced* when at least
``h_i`` members are activated) and a benefit ``b_i`` (the reward for
influencing it). ``CommunityStructure`` validates disjointness and
provides the member→community index used everywhere downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import CommunityError


@dataclass(frozen=True)
class Community:
    """One community: its members, activation threshold and benefit."""

    members: Tuple[int, ...]
    threshold: int
    benefit: float

    def __post_init__(self) -> None:
        if not self.members:
            raise CommunityError("a community must have at least one member")
        if len(set(self.members)) != len(self.members):
            raise CommunityError("community members must be distinct")
        if not (1 <= self.threshold <= len(self.members)):
            raise CommunityError(
                f"threshold {self.threshold} must lie in [1, |C|={len(self.members)}]"
            )
        if self.benefit < 0:
            raise CommunityError(f"benefit must be non-negative, got {self.benefit}")

    @property
    def size(self) -> int:
        """Number of members ``|C_i|``."""
        return len(self.members)

    def __contains__(self, node: int) -> bool:
        return node in self.members

    def __len__(self) -> int:
        return len(self.members)


class CommunityStructure:
    """A validated collection of disjoint communities over node ids.

    Exposes the notation of the paper:

    - ``r`` — number of communities,
    - ``total_benefit`` — ``b = Σ b_i``,
    - ``min_benefit`` — ``β = min_i b_i``,
    - ``max_threshold`` — ``h = max_i h_i``,
    - ``benefit_distribution`` — ``ρ(C_i) = b_i / b``, the RIC source
      distribution.
    """

    def __init__(self, communities: Sequence[Community]) -> None:
        if not communities:
            raise CommunityError("a community structure needs >= 1 community")
        self._communities: Tuple[Community, ...] = tuple(communities)
        self._community_of: Dict[int, int] = {}
        for idx, community in enumerate(self._communities):
            for node in community.members:
                if node in self._community_of:
                    raise CommunityError(
                        f"node {node} belongs to two communities "
                        f"({self._community_of[node]} and {idx}); "
                        "IMC requires disjoint communities"
                    )
                self._community_of[node] = idx

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._communities)

    def __iter__(self):
        return iter(self._communities)

    def __getitem__(self, index: int) -> Community:
        return self._communities[index]

    # ------------------------------------------------------------------
    # Paper notation
    # ------------------------------------------------------------------

    @property
    def r(self) -> int:
        """Number of communities ``r = |Com|``."""
        return len(self._communities)

    @property
    def total_benefit(self) -> float:
        """``b = Σ_i b_i`` — normaliser of the RIC source distribution."""
        return sum(c.benefit for c in self._communities)

    @property
    def min_benefit(self) -> float:
        """``β = min_i b_i`` (used in the ``c(S*) >= βk/h`` lower bound)."""
        return min(c.benefit for c in self._communities)

    @property
    def max_threshold(self) -> int:
        """``h = max_i h_i``."""
        return max(c.threshold for c in self._communities)

    @property
    def covered_nodes(self) -> int:
        """Number of nodes belonging to some community."""
        return len(self._community_of)

    def benefit_distribution(self) -> List[float]:
        """``ρ(C_i) = b_i / b`` as a list aligned with community indices.

        Raises :class:`CommunityError` when all benefits are zero, since
        ``ρ`` would be undefined (no community could ever contribute).
        """
        total = self.total_benefit
        if total <= 0:
            raise CommunityError(
                "benefit distribution undefined: all community benefits are 0"
            )
        return [c.benefit / total for c in self._communities]

    def community_of(self, node: int) -> Optional[int]:
        """Index of the community containing ``node``; None if uncovered."""
        return self._community_of.get(node)

    def community_members(self, index: int) -> Tuple[int, ...]:
        """Members of community ``index``."""
        return self._communities[index].members

    def thresholds(self) -> List[int]:
        """All activation thresholds, aligned with community indices."""
        return [c.threshold for c in self._communities]

    def benefits(self) -> List[float]:
        """All benefits, aligned with community indices."""
        return [c.benefit for c in self._communities]

    def max_threshold_at_most(self, bound: int) -> bool:
        """Whether every threshold is at most ``bound``.

        BT/MB require bounded thresholds; solvers use this check to fail
        fast with a clear error instead of silently losing the guarantee.
        """
        return self.max_threshold <= bound

    def validate_against(self, num_nodes: int) -> None:
        """Check every member id is a valid node of an ``n``-node graph."""
        for community in self._communities:
            for node in community.members:
                if not (0 <= node < num_nodes):
                    raise CommunityError(
                        f"community member {node} is not a node of the "
                        f"{num_nodes}-node graph"
                    )

    def __repr__(self) -> str:
        return (
            f"CommunityStructure(r={self.r}, covered={self.covered_nodes}, "
            f"h_max={self.max_threshold}, b={self.total_benefit:g})"
        )
