"""Threshold/benefit policies and the size-cap rule from the paper.

Section VI-A of the paper fixes the experimental conventions:

- communities larger than a cap ``s`` are split into ``ceil(|C|/s)``
  pieces (default ``s = 8``),
- the benefit of a community equals its population (``b_i = |C_i|``),
- the activation threshold is either the constant 2 (bounded-threshold
  experiments, required by MB) or 50% of the population (regular case).

:func:`build_structure` composes a raw partition with these policies
into a validated :class:`~repro.communities.structure.CommunityStructure`.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

from repro.communities.structure import Community, CommunityStructure
from repro.errors import CommunityError

ThresholdPolicy = Callable[[Sequence[int]], int]
BenefitPolicy = Callable[[Sequence[int]], float]


def apply_size_cap(blocks: Sequence[Sequence[int]], cap: int) -> List[List[int]]:
    """Split every block larger than ``cap`` into ``ceil(|C|/cap)`` pieces.

    Matches the paper: "If a community C was larger than s, we split it
    into ⌈|C|/s⌉ communities." Pieces are contiguous runs of the sorted
    member list, each of size at most ``cap``.
    """
    if cap < 1:
        raise CommunityError(f"size cap must be >= 1, got {cap}")
    result: List[List[int]] = []
    for block in blocks:
        members = sorted(block)
        if len(members) <= cap:
            result.append(members)
            continue
        pieces = math.ceil(len(members) / cap)
        # Spread members as evenly as possible across the pieces.
        base, extra = divmod(len(members), pieces)
        start = 0
        for i in range(pieces):
            size = base + (1 if i < extra else 0)
            result.append(members[start : start + size])
            start += size
    return result


def constant_thresholds(value: int = 2) -> ThresholdPolicy:
    """Policy: ``h_i = min(value, |C_i|)`` (bounded-threshold experiments).

    The cap at community size keeps the threshold feasible for tiny
    communities (a 1-node community is influenced by its single member).
    """
    if value < 1:
        raise CommunityError(f"constant threshold must be >= 1, got {value}")

    def policy(members: Sequence[int]) -> int:
        return min(value, len(members))

    return policy


def fractional_thresholds(fraction: float = 0.5) -> ThresholdPolicy:
    """Policy: ``h_i = max(1, round(fraction * |C_i|))`` (regular case).

    The paper's regular experiments use ``h_i = 0.5 |C_i|``.
    """
    if not (0.0 < fraction <= 1.0):
        raise CommunityError(f"fraction must be in (0, 1], got {fraction}")

    def policy(members: Sequence[int]) -> int:
        return max(1, min(len(members), round(fraction * len(members))))

    return policy


def population_benefits(scale: float = 1.0) -> BenefitPolicy:
    """Policy: ``b_i = scale * |C_i|`` (the paper's setting)."""
    if scale <= 0:
        raise CommunityError(f"benefit scale must be positive, got {scale}")

    def policy(members: Sequence[int]) -> float:
        return scale * len(members)

    return policy


def unit_benefits() -> BenefitPolicy:
    """Policy: ``b_i = 1`` — the convention of the paper's proofs."""

    def policy(members: Sequence[int]) -> float:
        return 1.0

    return policy


def build_structure(
    blocks: Sequence[Sequence[int]],
    size_cap: Optional[int] = 8,
    threshold_policy: Optional[ThresholdPolicy] = None,
    benefit_policy: Optional[BenefitPolicy] = None,
) -> CommunityStructure:
    """Compose a raw partition with the paper's experimental policies.

    Applies the size cap (``None`` disables splitting), then assigns each
    resulting community its threshold and benefit. Defaults reproduce the
    paper's regular setting: ``s = 8``, ``h_i = 0.5|C_i|``,
    ``b_i = |C_i|``.
    """
    threshold_policy = threshold_policy or fractional_thresholds(0.5)
    benefit_policy = benefit_policy or population_benefits()
    capped = apply_size_cap(blocks, size_cap) if size_cap is not None else [
        sorted(b) for b in blocks
    ]
    communities = [
        Community(
            members=tuple(members),
            threshold=threshold_policy(members),
            benefit=benefit_policy(members),
        )
        for members in capped
        if members
    ]
    return CommunityStructure(communities)
