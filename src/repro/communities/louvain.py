"""Louvain community detection, implemented from scratch.

The paper partitions its social networks with "the well-known Louvain
algorithm [21], [22], which extracts communities to optimize the network
modularity" (Section VI-A). This module is a complete two-phase Louvain:

1. **Local moving** — repeatedly move single nodes to the neighbouring
   community with the largest modularity gain until no move improves Q.
2. **Aggregation** — collapse each community into one super-node (with
   self-loop weight = internal edge weight) and recurse.

Directed graphs are symmetrised first (each arc counts as an undirected
edge of weight 1), matching classic undirected modularity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng

# Weighted undirected adjacency: node -> {neighbor: weight}; self-loops
# store the *full* internal weight (counted twice in degree, as usual).
_Adjacency = List[Dict[int, float]]


def _symmetrize(graph: DiGraph) -> _Adjacency:
    adjacency: _Adjacency = [dict() for _ in range(graph.num_nodes)]
    for u, v, _ in graph.edges():
        adjacency[u][v] = adjacency[u].get(v, 0.0) + 1.0
        adjacency[v][u] = adjacency[v].get(u, 0.0) + 1.0
    return adjacency


def _one_level(
    adjacency: _Adjacency,
    rng,
    min_gain: float,
) -> Tuple[List[int], bool]:
    """Phase 1: greedy local moves. Returns (assignment, improved)."""
    n = len(adjacency)
    community = list(range(n))
    # degree[v] includes self-loop weight twice (standard convention).
    degree = [
        sum(w for nb, w in adjacency[v].items() if nb != v)
        + 2.0 * adjacency[v].get(v, 0.0)
        for v in range(n)
    ]
    community_degree = degree[:]
    two_m = sum(degree)
    if two_m <= 0:
        return community, False

    improved = False
    order = list(range(n))
    rng.shuffle(order)
    moved = True
    sweeps = 0
    while moved and sweeps < 100:
        moved = False
        sweeps += 1
        for v in order:
            current = community[v]
            # Weight from v to each neighbouring community (self-loops excluded).
            links: Dict[int, float] = {}
            for nb, w in adjacency[v].items():
                if nb == v:
                    continue
                links[community[nb]] = links.get(community[nb], 0.0) + w
            community_degree[current] -= degree[v]
            best_community = current
            best_gain = links.get(current, 0.0) - (
                community_degree[current] * degree[v] / two_m
            )
            for candidate, weight_to in links.items():
                if candidate == current:
                    continue
                gain = weight_to - community_degree[candidate] * degree[v] / two_m
                if gain > best_gain + min_gain:
                    best_gain = gain
                    best_community = candidate
            community_degree[best_community] += degree[v]
            if best_community != current:
                community[v] = best_community
                moved = True
                improved = True
    return community, improved


def _aggregate(
    adjacency: _Adjacency, community: Sequence[int]
) -> Tuple[_Adjacency, List[int]]:
    """Phase 2: collapse communities into super-nodes.

    Returns ``(new_adjacency, relabel)`` where ``relabel[old_label]`` is
    the dense super-node id.
    """
    labels = sorted(set(community))
    relabel = {label: i for i, label in enumerate(labels)}
    new_n = len(labels)
    new_adjacency: _Adjacency = [dict() for _ in range(new_n)]
    for u in range(len(adjacency)):
        cu = relabel[community[u]]
        for v, w in adjacency[u].items():
            cv = relabel[community[v]]
            if u == v:
                # Self-loop weight is stored once; keep that convention.
                new_adjacency[cu][cu] = new_adjacency[cu].get(cu, 0.0) + w
            elif cu == cv:
                # Each internal edge visited from both endpoints: half each.
                new_adjacency[cu][cu] = new_adjacency[cu].get(cu, 0.0) + w / 2.0
            else:
                new_adjacency[cu][cv] = new_adjacency[cu].get(cv, 0.0) + w
    dense = [relabel[c] for c in community]
    return new_adjacency, dense


def louvain_communities(
    graph: DiGraph,
    seed: SeedLike = None,
    min_gain: float = 1e-12,
    max_levels: int = 32,
) -> List[List[int]]:
    """Detect communities with the Louvain method.

    Returns a list of communities, each a sorted list of node ids,
    ordered by smallest member id. ``seed`` controls the node-visit
    shuffle (Louvain's only source of randomness). ``min_gain`` is the
    minimum modularity improvement for a move to count, which guarantees
    termination despite floating-point noise.
    """
    n = graph.num_nodes
    if n == 0:
        return []
    rng = make_rng(seed)
    adjacency = _symmetrize(graph)
    # membership[v] = current super-node containing original node v.
    membership = list(range(n))
    for _ in range(max_levels):
        level_size = len(adjacency)
        community, improved = _one_level(adjacency, rng, min_gain)
        if not improved:
            break
        adjacency, dense = _aggregate(adjacency, community)
        # dense[super] is the new super-node of the old super-node `super`.
        membership = [dense[m] for m in membership]
        if len(adjacency) == level_size:
            break  # moves happened but nothing merged: a fixed point
    groups: Dict[int, List[int]] = {}
    for node, label in enumerate(membership):
        groups.setdefault(label, []).append(node)
    communities = [sorted(members) for members in groups.values()]
    communities.sort(key=lambda members: members[0])
    return communities
