"""Random partition baseline (Section VI-A).

"In the Random algorithm, we fix the number of communities and randomly
put nodes into communities." Used in the paper to measure how much the
community-formation method matters for IMC solution quality (Fig. 4).
"""

from __future__ import annotations

from typing import List

from repro.errors import CommunityError
from repro.rng import SeedLike, make_rng


def random_partition(
    num_nodes: int,
    num_communities: int,
    seed: SeedLike = None,
) -> List[List[int]]:
    """Partition ``0..num_nodes-1`` into ``num_communities`` random blocks.

    Every block is guaranteed non-empty (requires
    ``num_communities <= num_nodes``); beyond that nodes are assigned
    uniformly at random. Blocks are returned with sorted members.
    """
    if num_communities < 1:
        raise CommunityError(
            f"num_communities must be >= 1, got {num_communities}"
        )
    if num_communities > num_nodes:
        raise CommunityError(
            f"cannot split {num_nodes} nodes into {num_communities} "
            "non-empty communities"
        )
    rng = make_rng(seed)
    nodes = list(range(num_nodes))
    rng.shuffle(nodes)
    blocks: List[List[int]] = [[] for _ in range(num_communities)]
    # Seed each block with one node so none is empty, then scatter the rest.
    for i in range(num_communities):
        blocks[i].append(nodes[i])
    for node in nodes[num_communities:]:
        blocks[rng.randrange(num_communities)].append(node)
    return [sorted(block) for block in blocks]
