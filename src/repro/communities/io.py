"""JSON persistence for community structures.

Experiments often reuse one expensive Louvain partition across many
runs; these helpers round-trip a :class:`CommunityStructure` (members,
thresholds, benefits) through a stable JSON schema::

    {"version": 1,
     "communities": [{"members": [...], "threshold": 2, "benefit": 8.0}, ...]}
"""

from __future__ import annotations

import json
import os
from typing import Union

from repro.communities.structure import Community, CommunityStructure
from repro.errors import CommunityError

PathLike = Union[str, "os.PathLike[str]"]

_SCHEMA_VERSION = 1


def structure_to_dict(structure: CommunityStructure) -> dict:
    """Serialise ``structure`` to a plain JSON-compatible dict."""
    return {
        "version": _SCHEMA_VERSION,
        "communities": [
            {
                "members": list(c.members),
                "threshold": c.threshold,
                "benefit": c.benefit,
            }
            for c in structure
        ],
    }


def structure_from_dict(payload: dict) -> CommunityStructure:
    """Rebuild a :class:`CommunityStructure` from
    :func:`structure_to_dict` output (validates as it builds)."""
    if not isinstance(payload, dict) or "communities" not in payload:
        raise CommunityError("payload is not a serialised community structure")
    version = payload.get("version")
    if version != _SCHEMA_VERSION:
        raise CommunityError(
            f"unsupported community-structure schema version {version!r}"
        )
    communities = []
    for entry in payload["communities"]:
        try:
            communities.append(
                Community(
                    members=tuple(entry["members"]),
                    threshold=int(entry["threshold"]),
                    benefit=float(entry["benefit"]),
                )
            )
        except (KeyError, TypeError) as exc:
            raise CommunityError(f"malformed community entry {entry!r}") from exc
    return CommunityStructure(communities)


def save_structure(structure: CommunityStructure, path: PathLike) -> None:
    """Write ``structure`` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(structure_to_dict(structure), fh, indent=2, sort_keys=True)


def load_structure(path: PathLike) -> CommunityStructure:
    """Read a structure previously written by :func:`save_structure`."""
    with open(path, "r", encoding="utf-8") as fh:
        return structure_from_dict(json.load(fh))
