"""Newman modularity for a node partition.

Modularity is the objective Louvain optimises:

``Q = (1/2m) Σ_{uv} [A_uv - k_u k_v / 2m] δ(c_u, c_v)``

computed on the *symmetrised* graph (each directed arc contributes as an
undirected edge of weight 1; antiparallel pairs contribute weight 2),
which matches how the paper applies the classic Louvain method to its
directed datasets.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import CommunityError
from repro.graph.digraph import DiGraph


def partition_from_blocks(blocks: Sequence[Sequence[int]], num_nodes: int) -> List[int]:
    """Convert block lists to a node→block-index assignment array.

    Nodes missing from every block get their own singleton labels after
    the explicit ones, so the result is always a full partition.
    """
    assignment = [-1] * num_nodes
    for label, block in enumerate(blocks):
        for node in block:
            if not (0 <= node < num_nodes):
                raise CommunityError(f"node {node} out of range 0..{num_nodes - 1}")
            if assignment[node] != -1:
                raise CommunityError(f"node {node} appears in two blocks")
            assignment[node] = label
    next_label = len(blocks)
    for node in range(num_nodes):
        if assignment[node] == -1:
            assignment[node] = next_label
            next_label += 1
    return assignment


def modularity(graph: DiGraph, assignment: Sequence[int]) -> float:
    """Modularity ``Q`` of ``assignment`` on the symmetrised ``graph``.

    ``assignment[v]`` is the block label of node ``v``. Structural edge
    weights are ignored (every arc counts 1), matching the unweighted
    modularity the paper's Louvain uses.
    """
    n = graph.num_nodes
    if len(assignment) != n:
        raise CommunityError(
            f"assignment length {len(assignment)} != num_nodes {n}"
        )
    # Symmetrised degree: each arc adds 1 to both endpoints' degree.
    degree = [graph.out_degree(v) + graph.in_degree(v) for v in range(n)]
    two_m = sum(degree)
    if two_m == 0:
        return 0.0
    internal = 0.0
    for u, v, _ in graph.edges():
        if assignment[u] == assignment[v]:
            internal += 2.0  # both orientations of the symmetrised edge
    degree_sums: Dict[int, float] = {}
    for v in range(n):
        degree_sums[assignment[v]] = degree_sums.get(assignment[v], 0.0) + degree[v]
    expected = sum(d * d for d in degree_sums.values()) / two_m
    return (internal - expected) / two_m
