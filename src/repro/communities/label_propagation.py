"""Label propagation community detection (Raghavan et al., 2007).

A second from-scratch detector besides Louvain: every node starts with
its own label and repeatedly adopts the most frequent label among its
(symmetrised) neighbours until labels stabilise. Near-linear time, no
objective function — useful as a cheap alternative community formation
for the Fig. 4-style sensitivity experiments, and as a cross-check that
IMC results are not artifacts of Louvain specifically.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng


def label_propagation_communities(
    graph: DiGraph,
    seed: SeedLike = None,
    max_sweeps: int = 100,
) -> List[List[int]]:
    """Detect communities by synchronous-free asynchronous label spread.

    Returns communities as sorted member lists, ordered by smallest
    member (the same contract as
    :func:`~repro.communities.louvain.louvain_communities`). ``seed``
    controls the node-visit order and random tie-breaking among equally
    frequent neighbour labels.
    """
    n = graph.num_nodes
    if n == 0:
        return []
    rng = make_rng(seed)
    # Symmetrised neighbour lists (direction is irrelevant to grouping).
    neighbors: List[List[int]] = [[] for _ in range(n)]
    seen = set()
    for u, v, _ in graph.edges():
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        neighbors[u].append(v)
        neighbors[v].append(u)

    labels = list(range(n))
    order = list(range(n))
    for _ in range(max_sweeps):
        rng.shuffle(order)
        changed = False
        for v in order:
            if not neighbors[v]:
                continue
            counts = Counter(labels[u] for u in neighbors[v])
            best_count = max(counts.values())
            best_labels = sorted(
                label for label, c in counts.items() if c == best_count
            )
            # Keep the current label when it ties the best (stability);
            # otherwise pick randomly among the winners.
            if labels[v] in best_labels:
                continue
            labels[v] = best_labels[rng.randrange(len(best_labels))]
            changed = True
        if not changed:
            break

    groups: Dict[int, List[int]] = {}
    for node, label in enumerate(labels):
        groups.setdefault(label, []).append(node)
    communities = [sorted(members) for members in groups.values()]
    communities.sort(key=lambda members: members[0])
    return communities
