"""Greedy modularity (CNM) community detection, from scratch.

Clauset–Newman–Moore agglomeration: start from singleton communities
and repeatedly merge the pair with the largest modularity gain ``ΔQ``,
tracking the best partition seen. A third detector besides Louvain and
label propagation — slower but deterministic (no RNG at all), which
makes it the reference formation for reproducibility-sensitive studies.

Works on the symmetrised unweighted view of the graph, like the other
detectors.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.graph.digraph import DiGraph
from repro.utils.heap import LazyMaxHeap


def greedy_modularity_communities(
    graph: DiGraph,
    min_gain: float = 0.0,
) -> List[List[int]]:
    """Detect communities by CNM greedy modularity maximisation.

    Merging stops when the best available ``ΔQ`` drops to ``min_gain``
    or below (0.0 = classic CNM: merge only while modularity improves).
    Returns sorted member lists ordered by smallest member, the same
    contract as the other detectors.
    """
    n = graph.num_nodes
    if n == 0:
        return []

    # Symmetrised adjacency weights between current communities.
    # e[i][j] = fraction of edge endpoints between communities i and j.
    neighbors: List[Dict[int, float]] = [dict() for _ in range(n)]
    degree = [0.0] * n
    seen: Set[Tuple[int, int]] = set()
    for u, v, _ in graph.edges():
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        neighbors[u][v] = neighbors[u].get(v, 0.0) + 1.0
        neighbors[v][u] = neighbors[v].get(u, 0.0) + 1.0
        degree[u] += 1.0
        degree[v] += 1.0
    two_m = sum(degree)
    if two_m == 0:
        return [[v] for v in range(n)]

    # Community bookkeeping: members, fractions a_i = deg_i / 2m,
    # e_ij = edges(i,j) / m... we work with raw counts and divide by 2m
    # only inside the gain formula: dQ = 2*(e_ij/2m - a_i*a_j).
    members: Dict[int, List[int]] = {v: [v] for v in range(n)}
    community_degree = degree[:]
    links: List[Dict[int, float]] = [dict(nb) for nb in neighbors]
    alive = set(range(n))

    def gain(i: int, j: int) -> float:
        e_ij = links[i].get(j, 0.0)
        return 2.0 * (
            e_ij / two_m
            - (community_degree[i] / two_m) * (community_degree[j] / two_m)
        )

    heap: LazyMaxHeap[Tuple[int, int]] = LazyMaxHeap()
    for i in alive:
        for j in links[i]:
            if i < j:
                heap.push((i, j), gain(i, j))

    while heap:
        (i, j), cached = heap.pop_max()
        if i not in alive or j not in alive:
            continue
        fresh = gain(i, j)
        if abs(fresh - cached) > 1e-12:
            heap.push((i, j), fresh)
            continue
        if fresh <= min_gain:
            break
        # Merge j into i.
        alive.discard(j)
        members[i].extend(members.pop(j))
        community_degree[i] += community_degree[j]
        for neighbor, weight in links[j].items():
            if neighbor == i:
                continue
            links[i][neighbor] = links[i].get(neighbor, 0.0) + weight
            links[neighbor].pop(j, None)
            links[neighbor][i] = links[i][neighbor]
        links[i].pop(j, None)
        links[j] = {}
        # Refresh heap entries for i's neighbourhood.
        for neighbor in links[i]:
            if neighbor in alive:
                a, b = (i, neighbor) if i < neighbor else (neighbor, i)
                heap.push((a, b), gain(a, b))

    communities = [sorted(member_list) for member_list in members.values()]
    communities.sort(key=lambda member_list: member_list[0])
    return communities
