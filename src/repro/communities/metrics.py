"""Partition comparison metrics: NMI and ARI, from scratch.

Used to score detected communities against ground truth (e.g. the
planted partition a generator returns) and to quantify how differently
two detectors carve the same network — the companion measurements to
the formation experiments (Fig. 4 and the formation ablation).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.errors import CommunityError


def _labels_from_blocks(
    blocks: Sequence[Sequence[int]],
) -> Dict[int, int]:
    labels: Dict[int, int] = {}
    for label, block in enumerate(blocks):
        for node in block:
            if node in labels:
                raise CommunityError(f"node {node} appears in two blocks")
            labels[node] = label
    return labels


def _aligned_labels(
    blocks_a: Sequence[Sequence[int]],
    blocks_b: Sequence[Sequence[int]],
) -> Tuple[List[int], List[int]]:
    labels_a = _labels_from_blocks(blocks_a)
    labels_b = _labels_from_blocks(blocks_b)
    if set(labels_a) != set(labels_b):
        raise CommunityError(
            "partitions cover different node sets "
            f"({len(labels_a)} vs {len(labels_b)} nodes)"
        )
    nodes = sorted(labels_a)
    return [labels_a[v] for v in nodes], [labels_b[v] for v in nodes]


def normalized_mutual_information(
    blocks_a: Sequence[Sequence[int]],
    blocks_b: Sequence[Sequence[int]],
) -> float:
    """NMI with arithmetic-mean normalisation, in ``[0, 1]``.

    1.0 for identical partitions; ~0 for independent ones. Both
    partitions must cover exactly the same node set. When both
    partitions are single blocks (zero entropy each) they are identical
    by definition and NMI is 1.
    """
    a, b = _aligned_labels(blocks_a, blocks_b)
    n = len(a)
    count_a = Counter(a)
    count_b = Counter(b)
    joint = Counter(zip(a, b))

    def entropy(counts: Counter) -> float:
        return -sum(
            (c / n) * math.log(c / n) for c in counts.values() if c > 0
        )

    h_a, h_b = entropy(count_a), entropy(count_b)
    if h_a == 0.0 and h_b == 0.0:
        return 1.0
    mutual = 0.0
    for (label_a, label_b), c_ab in joint.items():
        p_ab = c_ab / n
        p_a = count_a[label_a] / n
        p_b = count_b[label_b] / n
        mutual += p_ab * math.log(p_ab / (p_a * p_b))
    denominator = (h_a + h_b) / 2.0
    if denominator == 0.0:
        return 0.0
    return max(0.0, min(1.0, mutual / denominator))


def adjusted_rand_index(
    blocks_a: Sequence[Sequence[int]],
    blocks_b: Sequence[Sequence[int]],
) -> float:
    """ARI (Hubert-Arabie), in ``[-1, 1]``; 1 iff identical, ~0 for
    random agreement."""
    a, b = _aligned_labels(blocks_a, blocks_b)
    n = len(a)

    def comb2(x: int) -> float:
        return x * (x - 1) / 2.0

    count_a = Counter(a)
    count_b = Counter(b)
    joint = Counter(zip(a, b))
    sum_joint = sum(comb2(c) for c in joint.values())
    sum_a = sum(comb2(c) for c in count_a.values())
    sum_b = sum(comb2(c) for c in count_b.values())
    total = comb2(n)
    if total == 0:
        return 1.0
    expected = sum_a * sum_b / total
    maximum = (sum_a + sum_b) / 2.0
    if maximum == expected:
        return 1.0  # both partitions degenerate identically
    return (sum_joint - expected) / (maximum - expected)


def partition_agreement(
    blocks_a: Sequence[Sequence[int]],
    blocks_b: Sequence[Sequence[int]],
) -> Dict[str, float]:
    """Both metrics in one dict: ``{"nmi": ..., "ari": ...}``."""
    return {
        "nmi": normalized_mutual_information(blocks_a, blocks_b),
        "ari": adjusted_rand_index(blocks_a, blocks_b),
    }
