"""Seeded random-number plumbing shared across the library.

Every stochastic component in :mod:`repro` (graph generators, diffusion
simulators, RIC sampling, randomised solvers) accepts either a seed or a
ready-made :class:`random.Random` instance through the helpers in this
module. Centralising the convention keeps experiments reproducible: a
single integer seed at the experiment level deterministically derives
independent streams for each sub-component.
"""

from __future__ import annotations

import random
from typing import Optional, Union

SeedLike = Union[None, int, random.Random]

#: Large prime used to derive child stream seeds from a parent seed.
_STREAM_PRIME = 2_147_483_647


def make_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    ``seed`` may be ``None`` (fresh OS-entropy stream), an ``int``
    (deterministic stream), or an existing :class:`random.Random`
    (returned unchanged so callers can share a stream).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_seed(parent: random.Random) -> int:
    """Draw a child-stream seed from ``parent``.

    Consumes exactly one draw from the parent, so callers that only need
    the *seed* (e.g. to ship to a worker process) advance the parent
    stream identically to :func:`spawn_rng`. This is the contract the
    parallel RIC sampler relies on for serial/parallel determinism.
    """
    return parent.randrange(_STREAM_PRIME)


def spawn_rng(parent: random.Random) -> random.Random:
    """Derive a child stream from ``parent``.

    The child's seed is drawn from the parent (via :func:`spawn_seed`),
    which both advances the parent deterministically and gives the child
    an independent stream.
    """
    return random.Random(spawn_seed(parent))


def derive_seed(base: Optional[int], *components: Union[int, str]) -> Optional[int]:
    """Deterministically combine ``base`` with stream ``components``.

    Used by experiment configs to give each (dataset, algorithm, trial)
    triple its own reproducible stream. Returns ``None`` when ``base`` is
    ``None`` so unseeded experiments stay unseeded.
    """
    if base is None:
        return None
    acc = base & 0xFFFFFFFF
    for comp in components:
        if isinstance(comp, str):
            comp = sum((i + 1) * byte for i, byte in enumerate(comp.encode("utf-8")))
        acc = (acc * 1_000_003 + comp + 0x9E3779B9) & 0xFFFFFFFF
    return acc
