"""Cascade tracing: when does each community tip?

Forward simulation utilities that record *when* activations happen —
per diffusion round — and derive the community-level timeline: the
round at which each community crossed its activation threshold. Used
by the examples for narrative output and by analyses of how quickly an
IMC seed set converts communities (the paper's diffusion is the
round-based IC of Section II-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.communities.structure import CommunityStructure
from repro.diffusion.independent_cascade import ic_round_trace
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike


@dataclass(frozen=True)
class CascadeTrace:
    """One traced cascade.

    - ``rounds``: per-round sets of newly activated nodes (round 0 is
      the seed set);
    - ``activation_round``: node -> round it became active;
    - ``community_tipping``: community index -> round its activated-
      member count first reached the threshold (absent if it never did);
    - ``influenced_benefit``: total benefit of tipped communities.
    """

    rounds: Tuple[frozenset, ...]
    activation_round: Dict[int, int]
    community_tipping: Dict[int, int]
    influenced_benefit: float

    @property
    def num_rounds(self) -> int:
        """Number of diffusion rounds (seed round included)."""
        return len(self.rounds)

    @property
    def total_activated(self) -> int:
        """Total nodes activated over the whole cascade."""
        return len(self.activation_round)

    def tipped_communities(self) -> List[int]:
        """Indices of influenced communities, by tipping round."""
        return sorted(self.community_tipping, key=lambda i: (self.community_tipping[i], i))


def trace_cascade(
    graph: DiGraph,
    communities: CommunityStructure,
    seeds: Iterable[int],
    seed: SeedLike = None,
) -> CascadeTrace:
    """Run one IC cascade and derive its community timeline."""
    rounds = ic_round_trace(graph, seeds, seed=seed)
    activation_round: Dict[int, int] = {}
    for round_index, newly in enumerate(rounds):
        for node in newly:
            activation_round[node] = round_index

    counts = [0] * communities.r
    tipping: Dict[int, int] = {}
    for round_index, newly in enumerate(rounds):
        for node in newly:
            community_index = communities.community_of(node)
            if community_index is None:
                continue
            counts[community_index] += 1
            threshold = communities[community_index].threshold
            if (
                community_index not in tipping
                and counts[community_index] >= threshold
            ):
                tipping[community_index] = round_index
    benefit = sum(communities[i].benefit for i in tipping)
    return CascadeTrace(
        rounds=tuple(frozenset(r) for r in rounds),
        activation_round=activation_round,
        community_tipping=tipping,
        influenced_benefit=benefit,
    )


def average_tipping_profile(
    graph: DiGraph,
    communities: CommunityStructure,
    seeds: Iterable[int],
    num_trials: int = 200,
    seed: SeedLike = None,
) -> Dict[int, float]:
    """Per-community probability of tipping, averaged over cascades.

    Returns ``{community_index: Pr[tipped]}`` — the per-community
    decomposition of ``c(S)/b_i``. Communities that never tip across
    all trials are included with probability 0.0.
    """
    from repro.rng import make_rng, spawn_rng

    rng = make_rng(seed)
    seed_list = list(seeds)
    tipped_counts = [0] * communities.r
    for _ in range(num_trials):
        trace = trace_cascade(graph, communities, seed_list, seed=spawn_rng(rng))
        for index in trace.community_tipping:
            tipped_counts[index] += 1
    return {i: tipped_counts[i] / num_trials for i in range(communities.r)}
