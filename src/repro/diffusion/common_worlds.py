"""Paired seed-set comparison via common random worlds.

Comparing two seed sets with *independent* Monte-Carlo runs wastes
variance on world noise; evaluating both on the *same* pre-sampled
live-edge worlds (common random numbers) makes the difference estimate
far tighter — the standard trick for A/B-comparing seeding strategies.

:class:`CommonWorldEvaluator` pre-samples ``W`` deterministic worlds
once; any number of seed sets can then be scored (benefit and spread)
on the identical world set, and :meth:`compare` returns the paired
per-world benefit differences.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.communities.structure import CommunityStructure
from repro.diffusion.independent_cascade import sample_live_edge_graph
from repro.diffusion.linear_threshold import lt_live_edge_graph
from repro.diffusion.simulator import benefit_of_active_set
from repro.errors import EstimationError
from repro.graph.analysis import forward_reachable
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng, spawn_rng


class CommonWorldEvaluator:
    """Evaluate seed sets on a fixed panel of sampled worlds."""

    def __init__(
        self,
        graph: DiGraph,
        communities: CommunityStructure,
        num_worlds: int = 200,
        model: str = "ic",
        seed: SeedLike = None,
    ) -> None:
        if num_worlds < 1:
            raise EstimationError(
                f"num_worlds must be >= 1, got {num_worlds}"
            )
        if model not in ("ic", "lt"):
            raise EstimationError(f"model must be 'ic' or 'lt', got {model!r}")
        communities.validate_against(graph.num_nodes)
        self.graph = graph
        self.communities = communities
        self.model = model
        rng = make_rng(seed)
        sample = (
            sample_live_edge_graph if model == "ic" else lt_live_edge_graph
        )
        self.worlds: List[DiGraph] = [
            sample(graph, seed=spawn_rng(rng)) for _ in range(num_worlds)
        ]

    @property
    def num_worlds(self) -> int:
        """Size of the world panel."""
        return len(self.worlds)

    def benefits(self, seeds: Iterable[int]) -> List[float]:
        """Per-world benefit of ``seeds`` (aligned with the panel)."""
        seed_list = list(seeds)
        return [
            benefit_of_active_set(
                forward_reachable(world, seed_list), self.communities
            )
            for world in self.worlds
        ]

    def benefit(self, seeds: Iterable[int]) -> float:
        """Mean benefit over the panel — a ``c(S)`` estimate."""
        values = self.benefits(seeds)
        return sum(values) / len(values)

    def spread(self, seeds: Iterable[int]) -> float:
        """Mean activated-node count over the panel — a ``σ(S)`` estimate."""
        seed_list = list(seeds)
        return sum(
            len(forward_reachable(world, seed_list)) for world in self.worlds
        ) / len(self.worlds)

    def compare(
        self, seeds_a: Iterable[int], seeds_b: Iterable[int]
    ) -> Dict[str, float]:
        """Paired comparison of two seed sets on the identical worlds.

        Returns ``mean_diff`` (a − b), ``wins_a``/``wins_b``/``ties``
        world counts, and both means. Because the worlds are shared,
        ``mean_diff``'s variance excludes all world-level noise.
        """
        values_a = self.benefits(seeds_a)
        values_b = self.benefits(seeds_b)
        diffs = [a - b for a, b in zip(values_a, values_b)]
        return {
            "mean_a": sum(values_a) / len(values_a),
            "mean_b": sum(values_b) / len(values_b),
            "mean_diff": sum(diffs) / len(diffs),
            "wins_a": float(sum(1 for d in diffs if d > 0)),
            "wins_b": float(sum(1 for d in diffs if d < 0)),
            "ties": float(sum(1 for d in diffs if d == 0)),
        }
