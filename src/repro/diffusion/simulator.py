"""Forward evaluation of spread and community benefit.

``c(S)`` — the expected benefit of influenced communities — is #P-hard
to compute exactly, so the library offers three evaluators:

- :func:`community_benefit_monte_carlo` — plain Monte-Carlo mean over
  IC (or LT) cascades;
- :class:`BenefitEvaluator` — the same with a persistent configuration,
  shared by experiments;
- :func:`community_benefit_exact` — exact value by enumerating all
  live-edge realisations; exponential in ``m``, for tiny test graphs
  only (it is the ground truth the samplers are validated against).
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, List, Optional, Sequence, Set

from repro.communities.structure import CommunityStructure
from repro.diffusion.independent_cascade import simulate_ic
from repro.diffusion.linear_threshold import simulate_lt
from repro.errors import EstimationError
from repro.graph.analysis import forward_reachable
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng, spawn_rng

CascadeFn = Callable[..., Set[int]]

_MODELS = {"ic": simulate_ic, "lt": simulate_lt}


def influenced_communities(
    active: Set[int], communities: CommunityStructure
) -> List[int]:
    """Indices of communities whose activated-member count meets ``h_i``."""
    counts = [0] * communities.r
    for node in active:
        idx = communities.community_of(node)
        if idx is not None:
            counts[idx] += 1
    return [
        i for i, community in enumerate(communities) if counts[i] >= community.threshold
    ]


def benefit_of_active_set(
    active: Set[int], communities: CommunityStructure
) -> float:
    """Total benefit of the communities influenced by ``active``."""
    return sum(
        communities[i].benefit for i in influenced_communities(active, communities)
    )


def community_benefit_monte_carlo(
    graph: DiGraph,
    communities: CommunityStructure,
    seeds: Iterable[int],
    num_trials: int = 1000,
    model: str = "ic",
    seed: SeedLike = None,
) -> float:
    """Monte-Carlo estimate of ``c(S)`` under the chosen diffusion model."""
    if num_trials < 1:
        raise EstimationError(f"num_trials must be >= 1, got {num_trials}")
    cascade = _MODELS.get(model)
    if cascade is None:
        raise EstimationError(f"unknown model {model!r}; expected 'ic' or 'lt'")
    rng = make_rng(seed)
    seed_list = list(seeds)
    total = 0.0
    for _ in range(num_trials):
        active = cascade(graph, seed_list, seed=spawn_rng(rng))
        total += benefit_of_active_set(active, communities)
    return total / num_trials


def spread_monte_carlo(
    graph: DiGraph,
    seeds: Iterable[int],
    num_trials: int = 1000,
    model: str = "ic",
    seed: SeedLike = None,
) -> float:
    """Monte-Carlo estimate of the classic influence spread ``σ(S)``."""
    if num_trials < 1:
        raise EstimationError(f"num_trials must be >= 1, got {num_trials}")
    cascade = _MODELS.get(model)
    if cascade is None:
        raise EstimationError(f"unknown model {model!r}; expected 'ic' or 'lt'")
    rng = make_rng(seed)
    seed_list = list(seeds)
    total = 0
    for _ in range(num_trials):
        total += len(cascade(graph, seed_list, seed=spawn_rng(rng)))
    return total / num_trials


def _live_edge_realizations(graph: DiGraph):
    """Yield ``(probability, live_graph)`` over all 2^m edge subsets."""
    edge_list = list(graph.edges())
    for keep_mask in itertools.product((False, True), repeat=len(edge_list)):
        probability = 1.0
        live = DiGraph(graph.num_nodes)
        for keep, (u, v, w) in zip(keep_mask, edge_list):
            if keep:
                probability *= w
                live.add_edge(u, v, 1.0)
            else:
                probability *= 1.0 - w
        if probability > 0.0:
            yield probability, live


def community_benefit_exact(
    graph: DiGraph,
    communities: CommunityStructure,
    seeds: Iterable[int],
    max_edges: int = 20,
) -> float:
    """Exact ``c(S)`` by enumerating all live-edge graphs.

    Exponential in the edge count — guarded by ``max_edges``. This is
    the ground truth used to validate RIC unbiasedness in the tests.
    """
    if graph.num_edges > max_edges:
        raise EstimationError(
            f"exact evaluation enumerates 2^m graphs; m={graph.num_edges} "
            f"exceeds max_edges={max_edges}"
        )
    seed_list = list(seeds)
    expected = 0.0
    for probability, live in _live_edge_realizations(graph):
        active = forward_reachable(live, seed_list)
        expected += probability * benefit_of_active_set(active, communities)
    return expected


def spread_exact(
    graph: DiGraph, seeds: Iterable[int], max_edges: int = 20
) -> float:
    """Exact influence spread ``σ(S)`` by live-edge enumeration."""
    if graph.num_edges > max_edges:
        raise EstimationError(
            f"exact evaluation enumerates 2^m graphs; m={graph.num_edges} "
            f"exceeds max_edges={max_edges}"
        )
    seed_list = list(seeds)
    expected = 0.0
    for probability, live in _live_edge_realizations(graph):
        expected += probability * len(forward_reachable(live, seed_list))
    return expected


class BenefitEvaluator:
    """Reusable ``c(S)`` evaluator with a fixed configuration.

    Experiments evaluate many seed sets against the same
    (graph, communities, model) triple; this class carries that context
    and hands each evaluation an independent child RNG stream.
    """

    def __init__(
        self,
        graph: DiGraph,
        communities: CommunityStructure,
        num_trials: int = 1000,
        model: str = "ic",
        seed: SeedLike = None,
    ) -> None:
        if model not in _MODELS:
            raise EstimationError(f"unknown model {model!r}; expected 'ic' or 'lt'")
        communities.validate_against(graph.num_nodes)
        self.graph = graph
        self.communities = communities
        self.num_trials = num_trials
        self.model = model
        self._rng = make_rng(seed)

    def advance(self, count: int = 1) -> None:
        """Burn ``count`` child RNG streams without evaluating.

        Each :meth:`__call__` consumes one child stream from the
        evaluator's master RNG, so the Nth evaluation depends on how
        many came before it. Checkpoint resume uses this to skip the
        streams of runs restored from disk, keeping every *recomputed*
        benefit byte-identical to an uninterrupted session.
        """
        for _ in range(count):
            spawn_rng(self._rng)

    def __call__(self, seeds: Iterable[int]) -> float:
        """Estimate ``c(seeds)``."""
        return community_benefit_monte_carlo(
            self.graph,
            self.communities,
            seeds,
            num_trials=self.num_trials,
            model=self.model,
            seed=spawn_rng(self._rng),
        )
