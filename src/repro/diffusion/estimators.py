"""Monte-Carlo estimators with guarantees.

Implements the Stopping Rule Algorithm of Dagum, Karp, Luby and Ross
("An optimal algorithm for Monte Carlo estimation", SIAM J. Comput.
2000), which the paper's ``Estimate`` procedure (Algorithm 6) is built
on: keep drawing i.i.d. ``[0, 1]`` outcomes until their running sum
reaches ``Λ' = 1 + 4(e-2)·ln(2/δ)·(1+ε)/ε²``; then ``Λ'/T`` is an
(ε, δ)-approximation of the mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Tuple

from repro.errors import EstimationError
from repro.utils.validation import check_fraction

#: e - 2, the constant in the Dagum et al. stopping-rule threshold.
_E_MINUS_2 = math.e - 2.0


def stopping_rule_threshold(epsilon: float, delta: float) -> float:
    """``Λ' = 1 + 4(e-2)·ln(2/δ)·(1+ε)/ε²`` (Alg. 6, line 1)."""
    check_fraction(epsilon, "epsilon", EstimationError)
    check_fraction(delta, "delta", EstimationError)
    return 1.0 + 4.0 * _E_MINUS_2 * math.log(2.0 / delta) * (1.0 + epsilon) / (
        epsilon * epsilon
    )


@dataclass(frozen=True)
class DagumEstimate:
    """Result of a stopping-rule run.

    ``value`` is the estimated mean (or ``None`` when the trial budget
    ran out before the threshold was hit — the caller decides how to
    react; IMCAF keeps doubling its sample pool in that case).
    """

    value: Optional[float]
    trials: int
    successes: float
    converged: bool


def dagum_stopping_rule(
    draw: Callable[[], float],
    epsilon: float,
    delta: float,
    max_trials: Optional[int] = None,
) -> DagumEstimate:
    """Estimate ``E[X]`` of a ``[0, 1]``-valued variable via ``draw``.

    Draws until the running sum reaches the threshold ``Λ'`` or
    ``max_trials`` is exhausted. On convergence the estimate ``Λ'/T``
    satisfies ``Pr[|est - E[X]| <= ε·E[X]] >= 1 - δ``.
    """
    threshold = stopping_rule_threshold(epsilon, delta)
    total = 0.0
    trials = 0
    while total < threshold:
        if max_trials is not None and trials >= max_trials:
            return DagumEstimate(
                value=None, trials=trials, successes=total, converged=False
            )
        outcome = draw()
        if not (0.0 <= outcome <= 1.0):
            raise EstimationError(
                f"stopping rule requires outcomes in [0, 1], got {outcome!r}"
            )
        total += outcome
        trials += 1
    return DagumEstimate(
        value=threshold / trials, trials=trials, successes=total, converged=True
    )


def mean_with_confidence(
    values: Sequence[float], z: float = 1.96
) -> Tuple[float, float]:
    """Sample mean and half-width of a normal-approximation CI.

    Used by the experiment harness to report the spread across repeated
    trials (the paper averages ten runs per configuration).
    """
    if not values:
        raise EstimationError("cannot summarise an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half_width = z * math.sqrt(variance / n)
    return mean, half_width


def hoeffding_trials(epsilon: float, delta: float, value_range: float = 1.0) -> int:
    """Trials for an *additive* ``(ε, δ)`` guarantee via Hoeffding.

    ``T >= range² · ln(2/δ) / (2ε²)``. Provided for comparison with the
    (much cheaper on small means) multiplicative stopping rule.
    """
    check_fraction(delta, "delta", EstimationError)
    if epsilon <= 0:
        raise EstimationError(f"epsilon must be positive, got {epsilon}")
    if value_range <= 0:
        raise EstimationError(f"value_range must be positive, got {value_range}")
    return math.ceil(
        value_range * value_range * math.log(2.0 / delta) / (2.0 * epsilon * epsilon)
    )
