"""Independent Cascade (IC) model.

The paper's diffusion model (Section II-A): seeds are active at round 0;
when a node becomes active it gets a *single* chance to activate each
currently inactive out-neighbour ``v`` with probability ``w(u, v)``;
active nodes stay active. Equivalently (the live-edge view), realise
each edge independently with its probability and activate everything
forward-reachable from the seeds — the equivalence is exercised by the
test suite.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Set

from repro.graph.csr import FrozenDiGraph
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng


def simulate_ic(
    graph: DiGraph,
    seeds: Iterable[int],
    seed: SeedLike = None,
) -> Set[int]:
    """Run one IC cascade; return the set of activated nodes.

    The simulation is round-free (BFS order): each newly activated node
    flips a coin per out-edge exactly once, which is distribution-
    equivalent to the round-based formulation. On a frozen CSR snapshot
    the cascade walks the shared
    :meth:`~repro.graph.csr.FrozenDiGraph.out_pairs` traversal cache —
    same coin order, identical activations per seed.
    """
    rng = make_rng(seed)
    active: Set[int] = set()
    frontier = deque()
    for s in seeds:
        if s not in active:
            active.add(s)
            frontier.append(s)
    if isinstance(graph, FrozenDiGraph):
        pairs = graph.out_pairs()
        random = rng.random
        while frontier:
            u = frontier.popleft()
            for v, w in pairs[u]:
                if v not in active and random() < w:
                    active.add(v)
                    frontier.append(v)
        return active
    while frontier:
        u = frontier.popleft()
        targets, weights = graph.out_adjacency(u)
        for v, w in zip(targets, weights):
            if v not in active and rng.random() < w:
                active.add(v)
                frontier.append(v)
    return active


def sample_live_edge_graph(graph: DiGraph, seed: SeedLike = None) -> DiGraph:
    """Draw a deterministic *sample graph* G ~ G(V, E, w).

    Each edge is kept independently with its weight (probability); kept
    edges have weight 1.0 in the result. This is the generative view of
    the probabilistic graph used throughout the paper's analysis.
    """
    rng = make_rng(seed)
    live = DiGraph(graph.num_nodes)
    for u, v, w in graph.edges():
        if rng.random() < w:
            live.add_edge(u, v, 1.0)
    return live


def ic_round_trace(
    graph: DiGraph,
    seeds: Iterable[int],
    seed: SeedLike = None,
) -> List[Set[int]]:
    """Run IC round by round; return the list of per-round activations.

    ``result[0]`` is the seed set; ``result[t]`` the nodes first
    activated at round ``t``. Useful for visualisation and for tests of
    the round-based formulation's equivalence with :func:`simulate_ic`.
    """
    rng = make_rng(seed)
    active: Set[int] = set()
    current: Set[int] = set()
    for s in seeds:
        if s not in active:
            active.add(s)
            current.add(s)
    rounds: List[Set[int]] = [set(current)]
    while current:
        next_round: Set[int] = set()
        for u in sorted(current):
            targets, weights = graph.out_adjacency(u)
            for v, w in zip(targets, weights):
                if v not in active and rng.random() < w:
                    active.add(v)
                    next_round.add(v)
        if next_round:
            rounds.append(next_round)
        current = next_round
    return rounds
