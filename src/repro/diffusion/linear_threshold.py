"""Linear Threshold (LT) model.

The paper notes its solutions "can be easily extended to the Linear
Threshold model" (Section II-A); we provide the model so the extension
is real, not hypothetical. Each node draws a uniform threshold
``θ_v ∈ [0, 1]``; ``v`` activates when the total weight of its active
in-neighbours reaches ``θ_v``. Edge weights into a node are normalised
to sum to at most 1 (a requirement of the model); the weighted-cascade
scheme already satisfies it exactly.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Set

from repro.errors import GraphError
from repro.graph.csr import FrozenDiGraph
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng


def lt_live_edge_graph(graph: DiGraph, seed: SeedLike = None) -> DiGraph:
    """Draw a deterministic graph from LT's triggering-set distribution.

    Kempe et al. show LT is equivalent to the live-edge model where
    every node independently keeps *at most one* incoming edge, picking
    in-neighbour ``u`` with probability ``w(u, v)`` (and none with the
    remaining mass). Forward reachability from the seeds on this graph
    is distributed exactly like an LT cascade — the basis of the LT
    extension of RIC sampling.
    """
    rng = make_rng(seed)
    live = DiGraph(graph.num_nodes)
    for v in graph.nodes():
        sources, weights = graph.in_adjacency(v)
        if not sources:
            continue
        total = sum(weights)
        if total > 1.0 + 1e-9:
            raise GraphError(
                f"LT live-edge model requires incoming weights <= 1; "
                f"node {v} has total {total:.6f}"
            )
        draw = rng.random()
        cumulative = 0.0
        for u, w in zip(sources, weights):
            cumulative += w
            if draw < cumulative:
                live.add_edge(u, v, 1.0)
                break
    return live


def simulate_lt(
    graph: DiGraph,
    seeds: Iterable[int],
    seed: SeedLike = None,
    strict: bool = True,
) -> Set[int]:
    """Run one LT cascade; return the set of activated nodes.

    With ``strict=True`` (default) the function validates that every
    node's incoming weights sum to at most ``1 + 1e-9`` and raises
    :class:`GraphError` otherwise; with ``strict=False`` the weights are
    used as-is (thresholds above the reachable mass simply never fire).
    """
    if strict:
        for v in graph.nodes():
            _, weights = graph.in_adjacency(v)
            total = sum(weights)
            if total > 1.0 + 1e-9:
                raise GraphError(
                    f"LT model requires incoming weights to sum to <= 1; "
                    f"node {v} has total {total:.6f} "
                    "(use assign_weighted_cascade or strict=False)"
                )
    rng = make_rng(seed)
    thresholds: Dict[int, float] = {}
    incoming_active: Dict[int, float] = {}
    active: Set[int] = set()
    frontier = deque()
    for s in seeds:
        if s not in active:
            active.add(s)
            frontier.append(s)
    if isinstance(graph, FrozenDiGraph):
        # Frozen fast path: iterate the shared out_pairs traversal
        # cache; threshold draws happen in the same lazy order, so the
        # activation set matches the list-based walk exactly.
        pairs = graph.out_pairs()
        random = rng.random
        while frontier:
            u = frontier.popleft()
            for v, w in pairs[u]:
                if v in active:
                    continue
                if v not in thresholds:
                    thresholds[v] = random()
                incoming_active[v] = incoming_active.get(v, 0.0) + w
                if incoming_active[v] >= thresholds[v]:
                    active.add(v)
                    frontier.append(v)
        return active
    while frontier:
        u = frontier.popleft()
        targets, weights = graph.out_adjacency(u)
        for v, w in zip(targets, weights):
            if v in active:
                continue
            if v not in thresholds:
                # Lazily drawn threshold; rng.random() is U[0,1).
                thresholds[v] = rng.random()
            incoming_active[v] = incoming_active.get(v, 0.0) + w
            if incoming_active[v] >= thresholds[v]:
                active.add(v)
                frontier.append(v)
    return active
