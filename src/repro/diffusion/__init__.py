"""Diffusion substrate: IC/LT propagation, benefit evaluation, estimators.

Provides forward Monte-Carlo simulation of the Independent Cascade and
Linear Threshold models, live-edge sampling, community-benefit
evaluation ``c(S)``, exact evaluation by live-edge enumeration on tiny
graphs, and the Dagum–Karp–Luby–Ross stopping-rule estimator used by
Algorithm 6 of the paper.
"""

from repro.diffusion.common_worlds import CommonWorldEvaluator
from repro.diffusion.estimators import (
    DagumEstimate,
    dagum_stopping_rule,
    mean_with_confidence,
)
from repro.diffusion.independent_cascade import (
    sample_live_edge_graph,
    simulate_ic,
)
from repro.diffusion.linear_threshold import lt_live_edge_graph, simulate_lt
from repro.diffusion.trace import (
    CascadeTrace,
    average_tipping_profile,
    trace_cascade,
)
from repro.diffusion.simulator import (
    BenefitEvaluator,
    community_benefit_exact,
    community_benefit_monte_carlo,
    influenced_communities,
    spread_exact,
    spread_monte_carlo,
)

__all__ = [
    "simulate_ic",
    "simulate_lt",
    "sample_live_edge_graph",
    "lt_live_edge_graph",
    "CascadeTrace",
    "trace_cascade",
    "average_tipping_profile",
    "BenefitEvaluator",
    "CommonWorldEvaluator",
    "influenced_communities",
    "community_benefit_monte_carlo",
    "community_benefit_exact",
    "spread_monte_carlo",
    "spread_exact",
    "DagumEstimate",
    "dagum_stopping_rule",
    "mean_with_confidence",
]
