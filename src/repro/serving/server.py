"""HTTP front end: the always-on shard server.

Stdlib only — ``http.server.ThreadingHTTPServer`` with one handler
thread per connection. The request logic lives in :class:`ShardApp`
(plain methods over dicts) so tests can drive it without sockets; the
handler is a thin JSON adapter.

Endpoints:

- ``GET /healthz`` — liveness probe (``{"status": "ok"}``).
- ``GET /status`` — scenarios, per-shard state, hit/miss/eviction and
  request counters, uptime; when the server was started inside an
  instrumentation session with a trace sink, the tail of its *own*
  live trace file (read back torn-tail-safely via
  :func:`~repro.obs.sinks.read_jsonl`).
- ``GET /metrics`` — Prometheus text exposition of the process
  registry (empty outside an instrumentation session).
- ``POST /solve`` — body ``{"scenario", "budget", "solver"?,
  "ci_width"?}``; concurrent identical requests are batched onto one
  solve. Deterministic fields (``seeds``, ``objective``,
  ``num_samples``) depend only on the scenario spec and the query.
- ``POST /shutdown`` — graceful stop: responds, then stops accepting
  connections and closes every shard.

Error mapping: a :class:`~repro.errors.ServingError` on an unknown
scenario is ``404``; any other :class:`~repro.errors.ReproError` is
``400``; unexpected exceptions are ``500`` — a request is answered in
all cases, never dropped.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.errors import ReproError, ServingError
from repro.obs import metrics
from repro.obs.metrics import to_prometheus_text
from repro.obs.sinks import read_jsonl
from repro.serving.batching import RequestBatcher
from repro.serving.shards import ShardStore


class ShardApp:
    """Transport-independent request logic over a :class:`ShardStore`."""

    def __init__(
        self,
        store: ShardStore,
        *,
        default_solver: str = "UBG",
        trace_path: Optional[str] = None,
    ) -> None:
        self.store = store
        self.default_solver = default_solver
        #: Live trace sink to read back for ``/status`` (optional).
        self.trace_path = trace_path
        self.batcher = RequestBatcher()
        self.started = time.monotonic()
        self._req_lock = threading.Lock()
        self.requests = {"total": 0, "batched": 0, "failed": 0}

    # -- request counting ----------------------------------------------

    def _count(self, field: str) -> None:
        with self._req_lock:
            self.requests[field] += 1

    # -- endpoints ------------------------------------------------------

    def healthz(self) -> Dict[str, str]:
        """Liveness payload."""
        return {"status": "ok"}

    def status(self) -> Dict[str, object]:
        """Full server snapshot (shards, counters, live trace tail)."""
        payload = self.store.status()
        with self._req_lock:
            payload["requests"] = dict(self.requests)
        payload["in_flight"] = self.batcher.in_flight()
        payload["uptime_seconds"] = time.monotonic() - self.started
        if self.trace_path:
            try:
                spans = read_jsonl(self.trace_path)
            except OSError:
                spans = []
            payload["trace_tail"] = spans[-5:]
        return payload

    def prometheus(self) -> str:
        """Prometheus text exposition of the metrics registry."""
        return to_prometheus_text(metrics.snapshot())

    def solve(self, payload: Dict) -> Dict:
        """Answer one ``/solve`` request, batching concurrent twins."""
        began = time.perf_counter()
        try:
            scenario, k, solver, ci_width = self._parse_solve(payload)
            key = (scenario, k, solver, ci_width)
            result, leader = self.batcher.run(
                key, lambda: self._compute(scenario, k, solver, ci_width)
            )
        except BaseException:
            self._count("failed")
            metrics.inc("serving.requests.failed")
            raise
        finally:
            self._count("total")
            metrics.inc("serving.requests.total")
            metrics.observe(
                "serving.request.seconds", time.perf_counter() - began
            )
        if not leader:
            self._count("batched")
            metrics.inc("serving.requests.batched")
        response = dict(result)
        response["batched"] = not leader
        return response

    def _parse_solve(
        self, payload: Dict
    ) -> Tuple[str, int, str, Optional[float]]:
        if not isinstance(payload, dict):
            raise ServingError("solve payload must be a JSON object")
        scenario = payload.get("scenario")
        if not isinstance(scenario, str) or not scenario:
            raise ServingError("solve payload needs a 'scenario' string")
        budget = payload.get("budget")
        if not isinstance(budget, int) or isinstance(budget, bool):
            raise ServingError(
                f"solve payload needs an integer 'budget', got "
                f"{budget!r}"
            )
        solver = payload.get("solver", self.default_solver)
        if not isinstance(solver, str):
            raise ServingError(f"'solver' must be a string, got {solver!r}")
        ci_width = payload.get("ci_width")
        if ci_width is not None:
            if not isinstance(ci_width, (int, float)) or ci_width <= 0:
                raise ServingError(
                    f"'ci_width' must be a positive number, got "
                    f"{ci_width!r}"
                )
            ci_width = float(ci_width)
        return scenario, budget, solver, ci_width

    def _compute(
        self, scenario: str, k: int, solver: str, ci_width: Optional[float]
    ) -> Dict:
        shard = self.store.get(scenario)
        with shard.lock:
            shard.touch()
            shard.warm()
            response, cache_hit = shard.solve(
                k, solver_name=solver, ci_width=ci_width
            )
        # Evict *after* releasing the shard lock; the just-used shard
        # is protected so a tight budget cannot thrash it.
        self.store.evict_to_budget(protect=scenario)
        response = dict(response)
        response["cache_hit"] = cache_hit
        return response

    def close(self) -> None:
        """Shut the underlying store down."""
        self.store.close()


class ShardHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to a :class:`ShardApp`."""

    daemon_threads = True
    allow_reuse_address = True
    #: Listen backlog. The stdlib default (5) resets connections under
    #: a burst of hundreds of simultaneous clients before accept() can
    #: drain them; the load floor needs the kernel to queue the burst.
    request_queue_size = 1024

    def __init__(self, address: Tuple[str, int], app: ShardApp) -> None:
        super().__init__(address, _Handler)
        self.app = app


class _Handler(BaseHTTPRequestHandler):
    """JSON adapter between HTTP and :class:`ShardApp`."""

    server_version = "repro-imc-serve/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, *args) -> None:  # noqa: D102 - silence stderr
        pass

    @property
    def app(self) -> ShardApp:
        return self.server.app  # type: ignore[attr-defined]

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: Dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(code, body, "application/json")

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/healthz":
                self._send_json(200, self.app.healthz())
            elif self.path == "/status":
                self._send_json(200, self.app.status())
            elif self.path == "/metrics":
                self._send(
                    200,
                    self.app.prometheus().encode("utf-8"),
                    "text/plain; version=0.0.4",
                )
            else:
                self._send_json(404, {"error": f"no such path {self.path}"})
        except Exception as exc:  # noqa: BLE001 - answer, never drop
            self._send_json(500, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/solve":
                self._send_json(200, self.app.solve(self._read_body()))
            elif self.path == "/shutdown":
                self._send_json(200, {"status": "shutting down"})
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
            else:
                self._send_json(404, {"error": f"no such path {self.path}"})
        except ServingError as exc:
            code = 404 if "unknown scenario" in str(exc) else 400
            self._send_json(code, {"error": str(exc)})
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - answer, never drop
            self._send_json(500, {"error": str(exc)})

    def _read_body(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServingError("solve request needs a JSON body")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServingError(f"request body is not valid JSON: {exc}")


def start_http_server(
    app: ShardApp, host: str = "127.0.0.1", port: int = 0
) -> ShardHTTPServer:
    """Start serving ``app`` on a daemon thread; returns the server.

    ``port=0`` binds an ephemeral port — read the actual one from
    ``server.server_address[1]``. The caller owns shutdown:
    ``server.shutdown(); server.server_close(); app.close()``.
    """
    server = ShardHTTPServer((host, port), app)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    server._serve_thread = thread  # type: ignore[attr-defined]
    return server


def run_server(app: ShardApp, host: str, port: int) -> int:
    """Serve ``app`` until ``/shutdown`` or Ctrl-C; returns exit code."""
    server = ShardHTTPServer((host, port), app)
    bound = server.server_address
    print(f"serving on http://{bound[0]}:{bound[1]} "
          f"(scenarios: {', '.join(app.store.scenario_names())})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        app.close()
    return 0
