"""HTTP front end: the always-on shard server.

Stdlib only — ``http.server.ThreadingHTTPServer`` with one handler
thread per connection. The request logic lives in :class:`ShardApp`
(plain methods over dicts) so tests can drive it without sockets; the
handler is a thin JSON adapter.

Endpoints:

- ``GET /healthz`` — liveness probe (``{"status": "ok"}``).
- ``GET /status`` — scenarios, per-shard state, hit/miss/eviction and
  request counters, uptime; when the server was started inside an
  instrumentation session with a trace sink, the tail of its *own*
  live trace file (read back torn-tail-safely via
  :func:`~repro.obs.sinks.read_jsonl`).
- ``GET /metrics`` — Prometheus text exposition of the process
  registry (empty outside an instrumentation session).
- ``GET /metrics.json`` — the raw registry snapshot; the form the
  router's fleet aggregator scrapes and merges.
- ``POST /solve`` — body ``{"scenario", "budget", "solver"?,
  "ci_width"?}``; concurrent identical requests are batched onto one
  solve. Deterministic fields (``seeds``, ``objective``,
  ``num_samples``) depend only on the scenario spec and the query.
  Adopts the inbound ``X-Repro-Trace-Id``/``X-Repro-Parent-Span``
  trace context (minting a trace id when absent) and answers with the
  trace id plus a ``Server-Timing`` per-phase breakdown — headers
  only, never the body, preserving byte-identity.
- ``POST /shutdown`` — graceful stop: responds, then stops accepting
  connections and closes every shard.

Error mapping: a :class:`~repro.errors.ServingError` on an unknown
scenario is ``404``; any other :class:`~repro.errors.ReproError` is
``400``; unexpected exceptions are ``500`` — a request is answered in
all cases, never dropped. Malformed framing is rejected *before* the
body is read: a missing ``Content-Length`` is ``411``, a declared
length above :data:`MAX_BODY_BYTES` is ``413`` — so a malicious or
broken client can neither hang a handler thread on an unbounded read
nor balloon a replica's memory with one giant body.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ReproError, ServingError
from repro.obs import metrics, trace
from repro.obs.metrics import to_prometheus_text
from repro.obs.sinks import read_jsonl
from repro.obs.tracer import PARENT_HEADER, TRACE_HEADER, new_trace_id
from repro.serving.batching import RequestBatcher
from repro.serving.shards import ShardStore

#: Hard cap on request-body size. Solve payloads are a few hundred
#: bytes; anything past this is a broken or hostile client and is
#: rejected with ``413`` before a single body byte is read.
MAX_BODY_BYTES = 1 << 20


class RequestRejected(Exception):
    """An HTTP request refused before dispatch, with a specific status.

    Raised by :func:`read_json_body` for framing-level problems (missing
    ``Content-Length`` → 411, oversized body → 413, malformed length or
    JSON → 400). Handlers map it straight to a response; it never
    escapes the HTTP layer.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def read_json_body(headers, rfile, max_bytes: int = MAX_BODY_BYTES) -> Dict:
    """Read and parse one JSON request body, defensively.

    Validates the ``Content-Length`` header *before* touching the
    stream: missing → :class:`RequestRejected` 411 (Length Required),
    non-integer or negative → 400, above ``max_bytes`` → 413 (Payload
    Too Large). Only then reads exactly the declared bytes and parses
    them as JSON (bad encoding/JSON → 400). Shared by the shard-server
    and router handlers so both front doors reject malformed framing
    identically.
    """
    declared = headers.get("Content-Length")
    if declared is None:
        raise RequestRejected(
            411, "Content-Length header is required for this request"
        )
    try:
        length = int(declared)
    except (TypeError, ValueError):
        raise RequestRejected(
            400, f"Content-Length is not an integer: {declared!r}"
        )
    if length < 0:
        raise RequestRejected(
            400, f"Content-Length cannot be negative: {length}"
        )
    if length > max_bytes:
        raise RequestRejected(
            413,
            f"request body of {length} bytes exceeds the "
            f"{max_bytes}-byte limit",
        )
    raw = rfile.read(length) if length else b""
    if not raw:
        raise RequestRejected(400, "request needs a JSON body")
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RequestRejected(400, f"request body is not valid JSON: {exc}")


class ShardApp:
    """Transport-independent request logic over a :class:`ShardStore`."""

    def __init__(
        self,
        store: ShardStore,
        *,
        default_solver: str = "UBG",
        trace_path: Optional[str] = None,
    ) -> None:
        self.store = store
        self.default_solver = default_solver
        #: Live trace sink to read back for ``/status`` (optional).
        self.trace_path = trace_path
        self.batcher = RequestBatcher()
        self.started = time.monotonic()
        self._req_lock = threading.Lock()
        self.requests = {"total": 0, "batched": 0, "failed": 0}

    # -- request counting ----------------------------------------------

    def _count(self, field: str) -> None:
        with self._req_lock:
            self.requests[field] += 1

    # -- endpoints ------------------------------------------------------

    def healthz(self) -> Dict[str, str]:
        """Liveness payload."""
        return {"status": "ok"}

    def status(self) -> Dict[str, object]:
        """Full server snapshot (shards, counters, live trace tail)."""
        payload = self.store.status()
        with self._req_lock:
            payload["requests"] = dict(self.requests)
        payload["in_flight"] = self.batcher.in_flight()
        payload["uptime_seconds"] = time.monotonic() - self.started
        if self.trace_path:
            try:
                spans = read_jsonl(self.trace_path)
            except OSError:
                spans = []
            payload["trace_tail"] = spans[-5:]
        return payload

    def prometheus(self) -> str:
        """Prometheus text exposition of the metrics registry."""
        return to_prometheus_text(metrics.snapshot())

    def metrics_json(self) -> Dict:
        """Raw registry snapshot (``GET /metrics.json``) — the form the
        router's fleet aggregator scrapes and merges."""
        return metrics.snapshot()

    def handle_solve(
        self, payload: Dict, inbound_headers=None
    ) -> Tuple[Dict, Dict[str, str]]:
        """HTTP-facing solve: adopt trace context, answer with headers.

        Returns ``(response, headers)``. The inbound
        ``X-Repro-Trace-Id`` / ``X-Repro-Parent-Span`` headers (minted
        locally when absent, so a standalone replica's answers stay
        traceable) become the adopted context for every span the solve
        opens, and the response headers echo the trace id plus a
        ``Server-Timing`` per-phase breakdown. Both ride as *headers*
        so the JSON body — and its byte-identity contract — is
        untouched by observability.
        """
        inbound = inbound_headers or {}
        trace_id = inbound.get(TRACE_HEADER) or None
        parent_span = inbound.get(PARENT_HEADER) or None
        if trace_id is None:
            trace_id = new_trace_id()
            parent_span = None
        else:
            metrics.inc("serving.trace.adopted")
        timings: Dict[str, float] = {}
        response = self.solve(
            payload,
            trace_id=trace_id,
            parent_span=parent_span,
            timings=timings,
        )
        headers = {TRACE_HEADER: trace_id}
        if timings:
            headers["Server-Timing"] = ", ".join(
                f"{name};dur={seconds * 1e3:.3f}"
                for name, seconds in timings.items()
            )
        return response, headers

    def solve(
        self,
        payload: Dict,
        *,
        trace_id: Optional[str] = None,
        parent_span: Optional[str] = None,
        timings: Optional[Dict[str, float]] = None,
    ) -> Dict:
        """Answer one ``/solve`` request, batching concurrent twins.

        Concurrent requests coalesce on ``(scenario, budget, solver,
        has_ci_width)`` — so requests for *different* ``ci_width``
        targets on the same shard share one pool top-up, driven by the
        tightest width registered on the flight (plain queries never
        coalesce with ``ci_width`` ones, keeping their ``num_samples``
        a pure function of the spec). A follower whose own width the
        shared solve did not reach re-solves directly — the pool was
        already grown, so that re-solve is one cheap extra round at
        most — and every follower is answered at its own precision.

        ``trace_id``/``parent_span`` adopt a cross-process trace
        context for the duration (see :meth:`handle_solve`); ``timings``
        — when a dict is passed — receives per-phase wall durations
        (``parse``, ``batch``, ``resolve`` when taken, ``total``).
        """
        began = time.perf_counter()
        t = timings if timings is not None else {}
        with trace.context(trace_id, parent_span):
            with trace.span("serving/request") as root:
                try:
                    mark = time.perf_counter()
                    scenario, k, solver, ci_width = self._parse_solve(
                        payload
                    )
                    t["parse"] = time.perf_counter() - mark
                    root.set(scenario=scenario, budget=k, solver=solver)
                    group = (scenario, k, solver, ci_width is not None)
                    mark = time.perf_counter()
                    result, leader = self.batcher.run(
                        group,
                        lambda: self._compute(
                            scenario,
                            k,
                            solver,
                            ci_width,
                            width_provider=lambda: (
                                self.batcher.tightest_width(group)
                            ),
                        ),
                        width=ci_width,
                    )
                    t["batch"] = time.perf_counter() - mark
                    if not leader and not self._width_satisfied(
                        result, ci_width
                    ):
                        mark = time.perf_counter()
                        with trace.span(
                            "serving/resolve", scenario=scenario
                        ):
                            result = self._compute(
                                scenario, k, solver, ci_width
                            )
                        t["resolve"] = time.perf_counter() - mark
                except BaseException:
                    self._count("failed")
                    metrics.inc("serving.requests.failed")
                    raise
                finally:
                    self._count("total")
                    metrics.inc("serving.requests.total")
                    elapsed = time.perf_counter() - began
                    t["total"] = elapsed
                    metrics.observe("serving.request.seconds", elapsed)
        if not leader:
            self._count("batched")
            metrics.inc("serving.requests.batched")
            if ci_width is not None:
                metrics.inc("serving.requests.width_coalesced")
        response = dict(result)
        response["batched"] = not leader
        return response

    @staticmethod
    def _width_satisfied(result: Dict, ci_width: Optional[float]) -> bool:
        """Whether a shared flight's answer meets this request's width.

        ``True`` for plain queries, for answers whose relative CI width
        reached the target, and for pools already grown to the adaptive
        ceiling (where a direct solve could do no better either).
        """
        if ci_width is None:
            return True
        relative = result.get("ci_relative_width")
        if relative is not None and relative <= ci_width:
            return True
        return bool(result.get("pool_capped"))

    def _parse_solve(
        self, payload: Dict
    ) -> Tuple[str, int, str, Optional[float]]:
        if not isinstance(payload, dict):
            raise ServingError("solve payload must be a JSON object")
        scenario = payload.get("scenario")
        if not isinstance(scenario, str) or not scenario:
            raise ServingError("solve payload needs a 'scenario' string")
        budget = payload.get("budget")
        if not isinstance(budget, int) or isinstance(budget, bool):
            raise ServingError(
                f"solve payload needs an integer 'budget', got "
                f"{budget!r}"
            )
        solver = payload.get("solver", self.default_solver)
        if not isinstance(solver, str):
            raise ServingError(f"'solver' must be a string, got {solver!r}")
        ci_width = payload.get("ci_width")
        if ci_width is not None:
            if not isinstance(ci_width, (int, float)) or ci_width <= 0:
                raise ServingError(
                    f"'ci_width' must be a positive number, got "
                    f"{ci_width!r}"
                )
            ci_width = float(ci_width)
        return scenario, budget, solver, ci_width

    def _compute(
        self,
        scenario: str,
        k: int,
        solver: str,
        ci_width: Optional[float],
        width_provider: Optional[Callable[[], Optional[float]]] = None,
    ) -> Dict:
        with trace.span("serving/compute", scenario=scenario, solver=solver):
            shard = self.store.get(scenario)
            with shard.lock:
                shard.touch()
                shard.warm()
                response, cache_hit = shard.solve(
                    k,
                    solver_name=solver,
                    ci_width=ci_width,
                    width_provider=width_provider,
                )
            # Evict *after* releasing the shard lock; the just-used shard
            # is protected so a tight budget cannot thrash it.
            self.store.evict_to_budget(protect=scenario)
        response = dict(response)
        response["cache_hit"] = cache_hit
        return response

    def close(self) -> None:
        """Shut the underlying store down."""
        self.store.close()


class GracefulHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server with in-flight tracking and graceful drain.

    Base for the shard-server and router front doors. :meth:`drain`
    implements the SIGTERM protocol both use: stop accepting new
    connections, let every in-flight handler finish (bounded by a
    timeout), then close the listening socket — so a rolling restart
    never cuts a request mid-solve.
    """

    daemon_threads = True
    allow_reuse_address = True
    #: Listen backlog. The stdlib default (5) resets connections under
    #: a burst of hundreds of simultaneous clients before accept() can
    #: drain them; the load floor needs the kernel to queue the burst.
    request_queue_size = 1024

    def __init__(self, address: Tuple[str, int], handler_class) -> None:
        super().__init__(address, handler_class)
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()
        self._socket_closed = False

    def finish_request(self, request, client_address) -> None:
        """Dispatch one connection, counted against the drain barrier."""
        with self._inflight_lock:
            self._inflight += 1
            self._idle.clear()
        try:
            super().finish_request(request, client_address)
        finally:
            with self._inflight_lock:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.set()

    def in_flight(self) -> int:
        """Connections currently being handled."""
        with self._inflight_lock:
            return self._inflight

    def server_close(self) -> None:
        """Close the listening socket (idempotent — drain also closes)."""
        if self._socket_closed:
            return
        self._socket_closed = True
        super().server_close()

    def drain(self, timeout: float = 10.0) -> bool:
        """Graceful stop: stop accepting, finish in-flight, then close.

        Blocks until ``serve_forever`` has exited and every in-flight
        handler completed (or ``timeout`` seconds passed). Returns
        whether the drain was clean — ``False`` means handlers were
        still running when the timeout expired; their daemon threads
        die with the process.
        """
        self.shutdown()
        drained = self._idle.wait(timeout)
        self.server_close()
        return drained


class ShardHTTPServer(GracefulHTTPServer):
    """Threaded HTTP server bound to a :class:`ShardApp`."""

    def __init__(self, address: Tuple[str, int], app: ShardApp) -> None:
        super().__init__(address, _Handler)
        self.app = app


class _Handler(BaseHTTPRequestHandler):
    """JSON adapter between HTTP and :class:`ShardApp`."""

    server_version = "repro-imc-serve/1.0"
    protocol_version = "HTTP/1.1"
    #: Socket timeout while reading a request, so a client that stalls
    #: mid-headers or sends fewer body bytes than it declared cannot
    #: pin a handler thread forever.
    timeout = 60

    def log_message(self, *args) -> None:  # noqa: D102 - silence stderr
        pass

    @property
    def app(self) -> ShardApp:
        return self.server.app  # type: ignore[attr-defined]

    def _send(
        self,
        code: int,
        body: bytes,
        content_type: str,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: Dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(code, body, "application/json")

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/healthz":
                self._send_json(200, self.app.healthz())
            elif self.path == "/status":
                self._send_json(200, self.app.status())
            elif self.path == "/metrics":
                self._send(
                    200,
                    self.app.prometheus().encode("utf-8"),
                    "text/plain; version=0.0.4",
                )
            elif self.path == "/metrics.json":
                self._send_json(200, self.app.metrics_json())
            else:
                self._send_json(404, {"error": f"no such path {self.path}"})
        except Exception as exc:  # noqa: BLE001 - answer, never drop
            self._send_json(500, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/solve":
                response, headers = self.app.handle_solve(
                    self._read_body(), self.headers
                )
                body = json.dumps(response, sort_keys=True).encode("utf-8")
                self._send(200, body, "application/json", headers)
            elif self.path == "/shutdown":
                self._send_json(200, {"status": "shutting down"})
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
            else:
                self._send_json(404, {"error": f"no such path {self.path}"})
        except RequestRejected as exc:
            # Framing was rejected before the body was (fully) read, so
            # the connection may hold unread bytes — close it rather
            # than desynchronise the next keep-alive request.
            self.close_connection = True
            self._send_json(exc.status, {"error": exc.message})
        except ServingError as exc:
            code = 404 if "unknown scenario" in str(exc) else 400
            self._send_json(code, {"error": str(exc)})
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - answer, never drop
            self._send_json(500, {"error": str(exc)})

    def _read_body(self) -> Dict:
        return read_json_body(self.headers, self.rfile)


def start_http_server(
    app: ShardApp, host: str = "127.0.0.1", port: int = 0
) -> ShardHTTPServer:
    """Start serving ``app`` on a daemon thread; returns the server.

    ``port=0`` binds an ephemeral port — read the actual one from
    ``server.server_address[1]``. The caller owns shutdown:
    ``server.shutdown(); server.server_close(); app.close()``.
    """
    server = ShardHTTPServer((host, port), app)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    server._serve_thread = thread  # type: ignore[attr-defined]
    return server


def run_server(app: ShardApp, host: str, port: int) -> int:
    """Serve ``app`` until ``/shutdown`` or Ctrl-C; returns exit code."""
    server = ShardHTTPServer((host, port), app)
    bound = server.server_address
    print(f"serving on http://{bound[0]}:{bound[1]} "
          f"(scenarios: {', '.join(app.store.scenario_names())})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        app.close()
    return 0
