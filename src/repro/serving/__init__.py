"""Always-on IMC serving layer.

A long-lived daemon that keeps *warm*, versioned RIC sample-pool shards
per (graph, community-scenario) key and answers seed-selection queries
over HTTP without re-sampling from scratch on every request:

- :mod:`repro.serving.scenarios` — frozen scenario specs (dataset,
  scale, threshold policy, model, seed, warm pool size) and instance
  construction;
- :mod:`repro.serving.shards` — :class:`WarmShard` (one pool + sampler
  + solve cache behind a lock) and :class:`ShardStore` (registry with
  hit/miss accounting and LRU eviction under a byte budget);
- :mod:`repro.serving.batching` — :class:`RequestBatcher`, which
  coalesces concurrent identical requests onto one solve (and
  cross-``ci_width`` requests onto one shared pool top-up);
- :mod:`repro.serving.server` — the :class:`ShardApp` request logic and
  the stdlib ``ThreadingHTTPServer`` front end
  (:func:`start_http_server` / :func:`run_server`);
- :mod:`repro.serving.cluster` — the multi-replica deployment: a
  :class:`Supervisor` spawning/health-checking/restarting replica
  subprocesses and :class:`ServingCluster` pairing it with the router
  (``python -m repro cluster``);
- :mod:`repro.serving.router` — the cluster front door: rendezvous
  hashing of scenarios to replicas, per-replica circuit breakers,
  retry-with-failover;
- :mod:`repro.serving.loadgen` — the reusable load/chaos harness the
  serving benchmarks drive both deployments with;
- :mod:`repro.serving.fleet` — the fleet observability plane's metrics
  side: :class:`FleetMetricsAggregator` scrapes every replica's
  ``/metrics.json``, merges the snapshots and derives ``cluster.slo.*``
  gauges for the router's aggregated ``/metrics`` endpoint.

See ``docs/serving.md`` for endpoints, the shard lifecycle, the
eviction policy, the locking contract and the cluster topology.
"""

from repro.serving.batching import RequestBatcher
from repro.serving.cluster import (
    ClusterConfig,
    ReplicaConfig,
    ServingCluster,
    Supervisor,
    run_cluster,
)
from repro.serving.fleet import FleetMetricsAggregator, derive_slo_gauges
from repro.serving.loadgen import LoadGenerator, LoadPhase, PhaseResult
from repro.serving.router import (
    CircuitBreaker,
    ReplicaEndpoint,
    RouterApp,
    assign_replica,
    rendezvous_order,
    start_router_server,
)
from repro.serving.scenarios import ScenarioSpec, build_instance, default_scenarios
from repro.serving.server import ShardApp, ShardHTTPServer, run_server, start_http_server
from repro.serving.shards import ShardStore, WarmShard

__all__ = [
    "CircuitBreaker",
    "ClusterConfig",
    "FleetMetricsAggregator",
    "LoadGenerator",
    "LoadPhase",
    "PhaseResult",
    "ReplicaConfig",
    "ReplicaEndpoint",
    "RequestBatcher",
    "RouterApp",
    "ScenarioSpec",
    "ServingCluster",
    "ShardApp",
    "ShardHTTPServer",
    "ShardStore",
    "Supervisor",
    "WarmShard",
    "assign_replica",
    "build_instance",
    "default_scenarios",
    "derive_slo_gauges",
    "rendezvous_order",
    "run_cluster",
    "run_server",
    "start_http_server",
    "start_router_server",
]
