"""Always-on IMC serving layer.

A long-lived daemon that keeps *warm*, versioned RIC sample-pool shards
per (graph, community-scenario) key and answers seed-selection queries
over HTTP without re-sampling from scratch on every request:

- :mod:`repro.serving.scenarios` — frozen scenario specs (dataset,
  scale, threshold policy, model, seed, warm pool size) and instance
  construction;
- :mod:`repro.serving.shards` — :class:`WarmShard` (one pool + sampler
  + solve cache behind a lock) and :class:`ShardStore` (registry with
  hit/miss accounting and LRU eviction under a byte budget);
- :mod:`repro.serving.batching` — :class:`RequestBatcher`, which
  coalesces concurrent identical requests onto one solve;
- :mod:`repro.serving.server` — the :class:`ShardApp` request logic and
  the stdlib ``ThreadingHTTPServer`` front end
  (:func:`start_http_server` / :func:`run_server`).

See ``docs/serving.md`` for endpoints, the shard lifecycle, the
eviction policy and the locking contract.
"""

from repro.serving.batching import RequestBatcher
from repro.serving.scenarios import ScenarioSpec, build_instance, default_scenarios
from repro.serving.server import ShardApp, ShardHTTPServer, run_server, start_http_server
from repro.serving.shards import ShardStore, WarmShard

__all__ = [
    "RequestBatcher",
    "ScenarioSpec",
    "ShardApp",
    "ShardHTTPServer",
    "ShardStore",
    "WarmShard",
    "build_instance",
    "default_scenarios",
    "run_server",
    "start_http_server",
]
