"""Supervised multi-replica serving: spawn, health-check, restart.

:class:`Supervisor` runs N replicas of the PR-6 shard server
(:class:`~repro.serving.server.ShardApp`) as *subprocesses* on distinct
ports, each owning every scenario spec (cold until asked — the router's
rendezvous hashing means each scenario's traffic lands on one replica,
so each shard is *warm* in exactly one process while any replica can
serve any scenario after a failover cold-build). The supervisor

- health-checks replicas with periodic ``GET /healthz`` heartbeats and
  marks one unhealthy after ``heartbeat_failures`` consecutive misses
  (or the moment its process is found dead);
- restarts crashed replicas under bounded exponential backoff — the
  per-incident delay schedule is
  :meth:`repro.utils.retry.RetryPolicy.delay_for`, so restart pacing is
  deterministic and benchmarks can assert "back within the bound";
  every respawn is appended to :attr:`Supervisor.restart_log`;
- re-binds each replica to its *original* port on restart, so routing
  identity (and therefore shard placement) is stable across crashes.

:class:`ServingCluster` composes a supervisor with the
:mod:`repro.serving.router` front door into the one object the CLI and
benchmarks manage: ``start()``, serve, ``stop()`` (drain the router,
SIGTERM the replicas, reap). Replicas rebuilt after a kill regenerate
byte-identical pools — every seed is pinned by the
:class:`~repro.serving.scenarios.ScenarioSpec` — which is what makes
router-level failover and restart invisible to clients beyond latency.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import os
import signal
import socket
import sys
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ClusterError
from repro.obs import metrics
from repro.obs.events import EventJournal
from repro.obs.manifest import build_manifest, write_manifest
from repro.serving.router import (
    ReplicaEndpoint,
    RouterApp,
    RouterHTTPServer,
    start_router_server,
)
from repro.serving.scenarios import ScenarioSpec
from repro.utils.faults import FaultInjector
from repro.utils.retry import RetryPolicy

#: Default restart pacing: first respawn after ~0.25 s, doubling to a
#: 10 s ceiling, at most 5 respawn attempts per crash incident.
DEFAULT_RESTART_POLICY = RetryPolicy(
    max_attempts=6, base_delay=0.25, max_delay=10.0, jitter=0.25, seed=0
)


@dataclass(frozen=True)
class ReplicaConfig:
    """Everything one replica subprocess needs, in picklable form.

    Shipped to the spawned child as the single argument of
    :func:`_replica_main`. ``port`` is pre-reserved by the supervisor
    and stable across restarts; ``instances`` optionally carries
    pre-built ``(graph, communities)`` pairs so tests and benchmarks
    skip per-replica dataset builds.
    """

    replica_id: str
    host: str
    port: int
    scenarios: Dict[str, ScenarioSpec]
    instances: Optional[Dict[str, Tuple]] = None
    workers: Optional[int] = None
    round_size: int = 256
    memory_budget_bytes: Optional[int] = None
    default_solver: str = "UBG"
    warm: bool = False
    drain_timeout: float = 10.0
    sampler_retry: Optional[RetryPolicy] = None
    fault_injector: Optional[FaultInjector] = None
    #: Cluster run directory. When set, the replica opens its own obs
    #: session (pid-stamped trace/metrics files — every incarnation of
    #: a restarted replica keeps its own artifacts) and streams
    #: lifecycle events to ``replica-<id>.events.jsonl``.
    run_dir: Optional[str] = None


@dataclass(frozen=True)
class ClusterConfig:
    """Declarative description of a whole serving cluster.

    One frozen object the CLI, tests and benchmarks all build; the
    supervisor and router read their knobs from it. ``replica_ports``
    pins replica ports explicitly (length must equal ``replicas``);
    left ``None``, the supervisor reserves ephemeral ports itself.
    ``fault_injector`` rides to the replicas (shard-level chaos);
    ``router_fault_injector`` stays in the router process (forwarding
    latency chaos).
    """

    scenarios: Dict[str, ScenarioSpec]
    instances: Optional[Dict[str, Tuple]] = None
    replicas: int = 3
    host: str = "127.0.0.1"
    router_port: int = 0
    replica_ports: Optional[Sequence[int]] = None
    workers: Optional[int] = None
    round_size: int = 256
    memory_budget_bytes: Optional[int] = None
    default_solver: str = "UBG"
    warm: bool = False
    restart_policy: RetryPolicy = DEFAULT_RESTART_POLICY
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 2.0
    heartbeat_failures: int = 3
    startup_timeout: float = 60.0
    drain_timeout: float = 10.0
    breaker_threshold: int = 3
    breaker_reset_seconds: float = 1.0
    forward_timeout: float = 300.0
    sampler_retry: Optional[RetryPolicy] = None
    fault_injector: Optional[FaultInjector] = None
    router_fault_injector: Optional[FaultInjector] = None
    #: When set, the cluster persists its observability artifacts here:
    #: ``events.jsonl`` (cluster/supervisor lifecycle), per-replica
    #: event and trace/metrics files, ``cluster.manifest.json`` and the
    #: final ``cluster.metrics.json`` aggregation — the inputs of
    #: ``python -m repro report --cluster RUNDIR``.
    run_dir: Optional[str] = None
    #: Keep-alive connection pooling on the router→replica hop.
    pool_connections: bool = True

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ClusterError("a cluster needs at least one scenario")
        if self.replicas < 1:
            raise ClusterError(
                f"replicas must be >= 1, got {self.replicas}"
            )
        if self.replica_ports is not None and (
            len(self.replica_ports) != self.replicas
        ):
            raise ClusterError(
                f"replica_ports must list exactly {self.replicas} ports, "
                f"got {len(self.replica_ports)}"
            )
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ClusterError("heartbeat interval/timeout must be positive")
        if self.heartbeat_failures < 1:
            raise ClusterError(
                f"heartbeat_failures must be >= 1, got "
                f"{self.heartbeat_failures}"
            )


def _replica_main(config: ReplicaConfig) -> None:
    """Entry point of one replica subprocess (spawn target).

    Builds the full PR-6 stack — :class:`ShardStore` → :class:`ShardApp`
    → :class:`ShardHTTPServer` — on the pre-reserved port, then serves
    until SIGTERM. The SIGTERM handler runs the drain protocol on a
    side thread (calling ``shutdown()`` from a signal handler in the
    serving main thread would deadlock): stop accepting, finish
    in-flight requests, exit 0. The process detaches into its own
    process group so a chaos kill can take out the replica *and* its
    sampler worker children in one ``killpg``.
    """
    from repro.serving.server import ShardApp, ShardHTTPServer
    from repro.serving.shards import ShardStore

    if hasattr(os, "setpgrp"):
        try:
            os.setpgrp()
        except OSError:
            pass
    journal: Optional[EventJournal] = None
    owns_session = False
    if config.run_dir:
        journal = EventJournal(
            os.path.join(
                config.run_dir, f"replica-{config.replica_id}.events.jsonl"
            ),
            source=f"replica-{config.replica_id}",
        )
        if not obs.enabled():
            # Pid-stamped artifact names: a restarted replica is a new
            # process, and JsonlSink truncates on open — without the pid
            # each incarnation would clobber its predecessor's trace.
            prefix = os.path.join(
                config.run_dir,
                f"replica-{config.replica_id}-{os.getpid()}",
            )
            obs.enable(
                trace_out=prefix + ".trace.jsonl",
                metrics_out=prefix + ".metrics.jsonl",
            )
            owns_session = True
    on_evict = None
    if journal is not None:
        replica_journal = journal

        def on_evict(name: str) -> None:
            replica_journal.emit("shard.evicted", scenario=name)

    store = ShardStore(
        config.scenarios,
        config.instances,
        workers=config.workers,
        round_size=config.round_size,
        memory_budget_bytes=config.memory_budget_bytes,
        retry=config.sampler_retry,
        fault_injector=config.fault_injector,
        on_evict=on_evict,
    )
    app = ShardApp(store, default_solver=config.default_solver)
    server = ShardHTTPServer((config.host, config.port), app)

    def _drain(signum, frame) -> None:
        def _run() -> None:
            if journal is not None:
                journal.emit("server.drain.begin", port=config.port)
            server.drain(config.drain_timeout)
            if journal is not None:
                journal.emit("server.drain.end", port=config.port)

        threading.Thread(target=_run, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    try:
        if config.warm:
            for name in store.scenario_names():
                shard = store.get(name)
                with shard.lock:
                    shard.warm()
        if journal is not None:
            journal.emit(
                "server.started", port=config.port, warm=config.warm
            )
        server.serve_forever()
    finally:
        server.server_close()
        app.close()
        if owns_session:
            obs.disable()
        if journal is not None:
            journal.close()
    sys.exit(0)


def _reserve_port(host: str) -> int:
    """Reserve an ephemeral port by binding and immediately releasing.

    The replica re-binds the port moments later (``SO_REUSEADDR`` keeps
    the bind from failing on the lingering socket). Reserving up front
    — rather than letting each replica pick its own — is what lets a
    *restarted* replica come back on the same port, keeping its routing
    identity stable across crashes.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((host, 0))
        return probe.getsockname()[1]


def probe_health(host: str, port: int, timeout: float = 2.0) -> bool:
    """One ``GET /healthz`` probe; ``True`` iff the replica answered 200."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        response.read()
        return response.status == 200
    except (OSError, http.client.HTTPException):
        return False
    finally:
        conn.close()


class _ReplicaState:
    """Supervisor-side bookkeeping for one replica (not the process)."""

    __slots__ = (
        "replica_id",
        "port",
        "process",
        "healthy",
        "misses",
        "failed",
        "restarting",
    )

    def __init__(self, replica_id: str, port: int) -> None:
        self.replica_id = replica_id
        self.port = port
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.healthy = False
        self.misses = 0
        #: Permanently given up on (restart schedule exhausted).
        self.failed = False
        #: A restart incident is in progress for this replica.
        self.restarting = False


class Supervisor:
    """Spawn, watch and restart the replica fleet.

    Replica processes use the ``spawn`` start method and are
    *non-daemonic* — each replica runs its own sampler worker pool, and
    daemonic processes may not have children. :meth:`endpoints` is the
    router's live view of the fleet: a replica flagged unhealthy here
    is skipped by routing until its heartbeat comes back.
    """

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._replicas: Dict[str, _ReplicaState] = {}
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._restart_threads: List[threading.Thread] = []
        #: Append-only respawn journal. Each entry records one respawn
        #: attempt: ``replica_id``, 1-based ``attempt`` within its
        #: incident, the policy ``delay`` honoured before it, and
        #: monotonic stamps ``detected_at`` / ``respawn_at`` /
        #: ``healthy_at`` (``None`` until the probe confirms). The
        #: cluster benchmark asserts restart-within-backoff-bound from
        #: these entries.
        self.restart_log: List[Dict[str, object]] = []
        #: Cluster event journal (set by :class:`ServingCluster` before
        #: :meth:`start` when the config has a ``run_dir``). Lifecycle
        #: transitions stream here via :meth:`_emit`.
        self.journal: Optional[EventJournal] = None

    def _emit(self, event: str, **attrs: object) -> None:
        """Emit one lifecycle event if a journal is attached."""
        journal = self.journal
        if journal is not None:
            journal.emit(event, **attrs)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Reserve ports, spawn every replica, wait until all healthy."""
        if self._replicas:
            raise ClusterError("supervisor already started")
        ports = (
            list(self.config.replica_ports)
            if self.config.replica_ports is not None
            else [
                _reserve_port(self.config.host)
                for _ in range(self.config.replicas)
            ]
        )
        for index, port in enumerate(ports):
            state = _ReplicaState(f"r{index}", port)
            self._replicas[state.replica_id] = state
            state.process = self._spawn(state)
            self._emit(
                "replica.spawned",
                replica=state.replica_id,
                port=port,
                child_pid=state.process.pid,
            )
        deadline = time.monotonic() + self.config.startup_timeout
        for state in self._replicas.values():
            if not self._await_healthy(state, deadline):
                self.stop()
                raise ClusterError(
                    f"replica {state.replica_id} did not become healthy "
                    f"within {self.config.startup_timeout:.1f}s"
                )
        self._set_active_gauge()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-supervisor", daemon=True
        )
        self._monitor.start()

    def _spawn(self, state: _ReplicaState):
        config = ReplicaConfig(
            replica_id=state.replica_id,
            host=self.config.host,
            port=state.port,
            scenarios=self.config.scenarios,
            instances=self.config.instances,
            workers=self.config.workers,
            round_size=self.config.round_size,
            memory_budget_bytes=self.config.memory_budget_bytes,
            default_solver=self.config.default_solver,
            warm=self.config.warm,
            drain_timeout=self.config.drain_timeout,
            sampler_retry=self.config.sampler_retry,
            fault_injector=self.config.fault_injector,
            run_dir=self.config.run_dir,
        )
        process = self._ctx.Process(
            target=_replica_main,
            args=(config,),
            name=f"repro-replica-{state.replica_id}",
        )
        process.start()
        return process

    def _await_healthy(self, state: _ReplicaState, deadline: float) -> bool:
        while time.monotonic() < deadline:
            if probe_health(
                self.config.host, state.port, self.config.heartbeat_timeout
            ):
                with self._lock:
                    state.healthy = True
                    state.misses = 0
                self._emit(
                    "replica.healthy",
                    replica=state.replica_id,
                    port=state.port,
                )
                return True
            process = state.process
            if process is not None and not process.is_alive():
                return False
            time.sleep(0.05)
        return False

    def stop(self) -> None:
        """Drain and reap every replica (idempotent).

        SIGTERM first — each replica runs its graceful drain — then
        escalates to ``terminate()`` and finally ``kill()`` for anything
        that outstays the drain timeout.
        """
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        for thread in self._restart_threads:
            thread.join(timeout=5.0)
        for state in self._replicas.values():
            process = state.process
            if process is None or not process.is_alive():
                continue
            try:
                os.kill(process.pid, signal.SIGTERM)
            except (OSError, TypeError):
                pass
        for state in self._replicas.values():
            process = state.process
            if process is None:
                continue
            process.join(timeout=self.config.drain_timeout + 2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
            with self._lock:
                state.healthy = False
            self._emit("replica.stopped", replica=state.replica_id)
        metrics.set_gauge("cluster.replicas.active", 0)

    # -- monitoring -----------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.config.heartbeat_interval):
            for state in list(self._replicas.values()):
                with self._lock:
                    skip = state.restarting or state.failed
                if skip:
                    continue
                self._check(state)
            self._set_active_gauge()

    def _check(self, state: _ReplicaState) -> None:
        process = state.process
        dead = process is None or not process.is_alive()
        alive = not dead and probe_health(
            self.config.host, state.port, self.config.heartbeat_timeout
        )
        if alive:
            with self._lock:
                state.healthy = True
                state.misses = 0
            return
        metrics.inc("cluster.heartbeat.failures")
        with self._lock:
            state.misses += 1
            misses = state.misses
            crashed = dead or state.misses >= self.config.heartbeat_failures
            if crashed:
                state.healthy = False
                state.restarting = True
        self._emit(
            "replica.heartbeat.missed",
            replica=state.replica_id,
            misses=misses,
            process_dead=dead,
        )
        if crashed:
            self._emit(
                "replica.crash.detected",
                replica=state.replica_id,
                process_dead=dead,
            )
        if crashed and not self._stop.is_set():
            thread = threading.Thread(
                target=self._restart_incident,
                args=(state,),
                name=f"repro-restart-{state.replica_id}",
                daemon=True,
            )
            self._restart_threads.append(thread)
            thread.start()

    def _restart_incident(self, state: _ReplicaState) -> None:
        """One crash incident: respawn under the policy's backoff.

        Attempt ``i`` sleeps the policy's i-th delay *before* the
        respawn, then polls the new process for health. The first
        healthy probe ends the incident (and resets the schedule — the
        next crash starts again from the first delay). Exhausting the
        schedule marks the replica permanently failed; routing simply
        never selects it again.
        """
        policy = self.config.restart_policy
        detected_at = time.monotonic()
        process = state.process
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
        for attempt in range(1, policy.max_attempts):
            if self._stop.is_set():
                return
            delay = policy.delay_for(attempt)
            self._stop.wait(delay)
            if self._stop.is_set():
                return
            entry: Dict[str, object] = {
                "replica_id": state.replica_id,
                "attempt": attempt,
                "delay": delay,
                "detected_at": detected_at,
                "respawn_at": time.monotonic(),
                "healthy_at": None,
            }
            self.restart_log.append(entry)
            state.process = self._spawn(state)
            metrics.inc("cluster.replica.restarts")
            self._emit(
                "replica.respawned",
                replica=state.replica_id,
                attempt=attempt,
                delay=delay,
                child_pid=state.process.pid,
            )
            deadline = time.monotonic() + self.config.startup_timeout
            if self._await_healthy(state, deadline):
                entry["healthy_at"] = time.monotonic()
                with self._lock:
                    state.restarting = False
                self._set_active_gauge()
                return
            process = state.process
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        with self._lock:
            state.failed = True
            state.restarting = False
        self._emit(
            "replica.restart.failed",
            replica=state.replica_id,
            attempts=policy.max_attempts - 1,
        )

    def _set_active_gauge(self) -> None:
        with self._lock:
            active = sum(1 for s in self._replicas.values() if s.healthy)
        metrics.set_gauge("cluster.replicas.active", active)

    # -- views ----------------------------------------------------------

    def endpoints(self) -> List[ReplicaEndpoint]:
        """The router's live fleet view (health included)."""
        with self._lock:
            return [
                ReplicaEndpoint(
                    replica_id=state.replica_id,
                    host=self.config.host,
                    port=state.port,
                    healthy=state.healthy and not state.failed,
                )
                for state in self._replicas.values()
            ]

    def status(self) -> Dict[str, object]:
        """JSON-ready supervisor snapshot."""
        with self._lock:
            replicas = [
                {
                    "replica_id": state.replica_id,
                    "port": state.port,
                    "pid": (
                        state.process.pid
                        if state.process is not None
                        else None
                    ),
                    "healthy": state.healthy,
                    "failed": state.failed,
                    "restarting": state.restarting,
                }
                for state in self._replicas.values()
            ]
        return {"replicas": replicas, "restarts": len(self.restart_log)}

    # -- chaos ----------------------------------------------------------

    def kill_replica(self, replica_id: str) -> int:
        """SIGKILL one replica *and its worker children* (chaos hook).

        Kills the replica's whole process group — the replica detached
        into its own group at startup — so its sampler workers die with
        it, exactly like an OOM kill would land. Returns the dead pid.
        The supervisor's monitor notices on its next beat and begins the
        restart incident; nothing else is special-cased, which is the
        point: chaos uses the same recovery path as real crashes.
        """
        state = self._replicas.get(replica_id)
        if state is None:
            raise ClusterError(f"no such replica {replica_id!r}")
        process = state.process
        if process is None or process.pid is None:
            raise ClusterError(f"replica {replica_id!r} has no process")
        pid = process.pid
        try:
            if hasattr(os, "killpg"):
                os.killpg(pid, signal.SIGKILL)
            else:  # pragma: no cover - non-POSIX
                process.kill()
        except (OSError, ProcessLookupError):
            process.kill()
        self._emit("replica.killed", replica=replica_id, child_pid=pid)
        return pid


class ServingCluster:
    """Supervisor + router, managed as one unit (context manager).

    With ``config.run_dir`` set the cluster additionally runs the fleet
    observability plane: a cluster-level :class:`EventJournal` shared
    by the supervisor (lifecycle events) and the router (breaker
    events), an obs session in the router process (opened only when the
    caller has not already opened one — sessions are per-process and
    exclusive), a ``cluster.manifest.json`` topology record at start,
    and a final ``cluster.metrics.json`` fleet aggregation written at
    stop *before* the replicas go away (a dead replica cannot answer a
    scrape).
    """

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.supervisor = Supervisor(config)
        self.router_app = RouterApp(
            self.supervisor.endpoints,
            breaker_threshold=config.breaker_threshold,
            breaker_reset_seconds=config.breaker_reset_seconds,
            forward_timeout=config.forward_timeout,
            fault_injector=config.router_fault_injector,
            pool_connections=config.pool_connections,
            supervisor_status=self.supervisor.status,
        )
        self.router_server: Optional[RouterHTTPServer] = None
        self.journal: Optional[EventJournal] = None
        self._owns_session = False

    @property
    def router_address(self) -> Tuple[str, int]:
        """The ``(host, port)`` clients should talk to."""
        if self.router_server is None:
            raise ClusterError("cluster is not started")
        return self.router_server.server_address  # type: ignore[return-value]

    def start(self) -> "ServingCluster":
        """Spawn the fleet, then open the router front door."""
        run_dir = self.config.run_dir
        if run_dir:
            os.makedirs(run_dir, exist_ok=True)
            self.journal = EventJournal(
                os.path.join(run_dir, "events.jsonl"), source="cluster"
            )
            self.supervisor.journal = self.journal
            self.router_app.journal = self.journal
            if not obs.enabled():
                obs.enable(
                    trace_out=os.path.join(run_dir, "router.trace.jsonl")
                )
                self._owns_session = True
        self.supervisor.start()
        self.router_server = start_router_server(
            self.router_app, self.config.host, self.config.router_port
        )
        if self.journal is not None:
            host, port = self.router_address
            self._write_cluster_manifest(run_dir, host, port)
            self.journal.emit(
                "cluster.started",
                router_port=port,
                replicas=self.config.replicas,
            )
        return self

    def _write_cluster_manifest(
        self, run_dir: str, host: str, port: int
    ) -> None:
        endpoints = self.supervisor.endpoints()
        topology = {
            "router_host": host,
            "router_port": port,
            "pool_connections": self.config.pool_connections,
            "replicas": [
                {
                    "replica_id": endpoint.replica_id,
                    "port": endpoint.port,
                    "workers": self.config.workers,
                    "scenarios": sorted(self.config.scenarios),
                }
                for endpoint in endpoints
            ],
        }
        manifest = build_manifest(command="cluster", config=topology)
        write_manifest(
            manifest, os.path.join(run_dir, "cluster.manifest.json")
        )

    def stop(self) -> None:
        """Drain the router, then stop the fleet (idempotent)."""
        if self.journal is not None and self.router_server is not None:
            # Final fleet sweep while every surviving replica can still
            # answer a scrape; the aggregation document is the report's
            # "fleet metrics" section.
            document = self.router_app.fleet.aggregate(force=True)
            path = os.path.join(self.config.run_dir, "cluster.metrics.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")
        if self.router_server is not None:
            self.router_server.drain(self.config.drain_timeout)
            self.router_server = None
        self.supervisor.stop()
        self.router_app.close_pools()
        if self.journal is not None:
            self.journal.emit("cluster.stopped")
            self.journal.close()
            self.journal = None
            self.supervisor.journal = None
            self.router_app.journal = None
        if self._owns_session:
            obs.disable()
            self._owns_session = False

    def __enter__(self) -> "ServingCluster":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def run_cluster(config: ClusterConfig) -> int:
    """Run a cluster until SIGTERM/SIGINT; returns an exit code.

    The CLI entry point behind ``python -m repro cluster``. SIGTERM
    triggers the graceful drain protocol documented in
    ``docs/serving.md``: the router stops accepting and finishes
    in-flight requests, then every replica is asked to drain in turn.
    """
    cluster = ServingCluster(config)
    stop = threading.Event()

    def _request_stop(signum, frame) -> None:
        stop.set()

    previous = signal.signal(signal.SIGTERM, _request_stop)
    try:
        cluster.start()
        host, port = cluster.router_address
        endpoints = cluster.supervisor.endpoints()
        print(
            f"cluster router on http://{host}:{port} "
            f"({len(endpoints)} replicas: "
            f"{', '.join(f'{e.replica_id}:{e.port}' for e in endpoints)}; "
            f"scenarios: {', '.join(sorted(config.scenarios))})"
        )
        while not stop.wait(0.5):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        cluster.stop()
    return 0
