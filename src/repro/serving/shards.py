"""Warm pool shards and the shard store.

A :class:`WarmShard` is the serving unit for one scenario: a
:class:`~repro.sampling.pool.RICSamplePool` fed by a
:class:`~repro.sampling.parallel.ParallelRICSampler` (samples are
hash-partitioned across worker processes by batch), plus a per-version
solve cache. Growth follows an MPC-style discipline: bounded
``round_size`` merge rounds — the master fans one round out to the
workers, *synchronously* merges the returned samples into the pool,
compacts (interning new reach sets against the persistent table) and
bumps the shard version — so per-round memory on every worker stays
bounded by ``round_size / workers`` samples regardless of pool size,
and the merged pool is byte-identical to a serial build
(:mod:`repro.sampling.parallel`'s determinism guarantee, which holds
across worker crashes too).

A :class:`ShardStore` owns the shards: scenario registry, hit/miss
accounting, and LRU eviction of *cold* shards once the summed
:func:`~repro.obs.diagnostics.pool_memory_bytes` footprint exceeds a
configurable byte budget. Shards whose lock is held (a solve in
flight) are never evicted mid-request — the evictor skips them.

Locking contract (see ``docs/serving.md``): every pool/engine/cache
access for a shard happens while holding ``shard.lock``. The pool and
the coverage engines are *not* thread-safe — the engines fail loudly
if a ``resync()`` races a marginal evaluation, but loud failure is a
backstop, not a substitute for the lock.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.communities.structure import CommunityStructure
from repro.core.bt import BT, MB
from repro.core.maf import MAF
from repro.core.objective import evaluate_benefit
from repro.core.ubg import UBG, GreedyC
from repro.errors import ServingError
from repro.obs import metrics, trace
from repro.obs.diagnostics import (
    bernoulli_sample_variance,
    normal_halfwidth,
    pool_memory_bytes,
)
from repro.rng import derive_seed
from repro.sampling.parallel import ParallelRICSampler
from repro.sampling.pool import RICSamplePool
from repro.serving.scenarios import ScenarioSpec, build_instance
from repro.utils.faults import FaultInjector
from repro.utils.retry import RetryPolicy

SOLVERS = ("UBG", "MAF", "BT", "MB", "GreedyC")

#: Confidence level for the reported ĉ(S) interval (1 - delta).
CI_DELTA = 0.05

#: Adaptive top-up ceiling: a ``ci_width`` request may grow the pool to
#: at most this multiple of the scenario's warm ``pool_size``.
MAX_POOL_FACTOR = 4


def make_solver(name: str, seed: Optional[int]):
    """Build a fresh solver routed through the flat coverage engine.

    Solvers carry per-run state (deadlines, RNG streams), so each solve
    gets a new instance; MAF/MB randomness is derived from ``seed`` so
    repeated solves of the same request are deterministic.
    """
    if name == "UBG":
        return UBG(engine="flat")
    if name == "MAF":
        return MAF(seed=seed, engine="flat")
    if name == "BT":
        return BT(engine="flat")
    if name == "MB":
        return MB(seed=seed, engine="flat")
    if name == "GreedyC":
        return GreedyC(engine="flat")
    raise ServingError(
        f"unknown solver {name!r} (known: {', '.join(SOLVERS)})"
    )


class WarmShard:
    """One scenario's warm pool, sampler, and per-version solve cache.

    All methods below :attr:`lock` in the docstring must be called with
    ``shard.lock`` held; the store and the HTTP app do so.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        graph,
        communities: CommunityStructure,
        *,
        workers: Optional[int] = None,
        round_size: int = 256,
        retry: Optional[RetryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        if round_size < 1:
            raise ServingError(
                f"round_size must be >= 1, got {round_size}"
            )
        self.spec = spec
        self.graph = graph
        self.communities = communities
        self.round_size = round_size
        #: Serialises every pool/engine/cache access for this shard.
        self.lock = threading.RLock()
        #: Bumped once per completed merge round; cache entries from
        #: older versions are stale and recomputed on next request.
        self.version = 0
        #: Monotonic stamp of the last request touch (LRU eviction key).
        self.last_used = time.monotonic()
        #: Footprint after the last merge round (pool_memory_bytes).
        self.bytes = 0
        self.sampler = ParallelRICSampler(
            graph,
            communities,
            seed=spec.seed,
            model=spec.model,
            workers=workers,
            retry=retry,
            fault_injector=fault_injector,
        )
        self.pool = RICSamplePool(self.sampler)
        # (k, solver, ci_width) -> (version, response dict)
        self._solve_cache: Dict[Tuple, Tuple[int, Dict]] = {}

    # -- lifecycle ------------------------------------------------------

    def touch(self) -> None:
        """Stamp the shard as recently used (any thread)."""
        self.last_used = time.monotonic()

    def ensure_target(self, target: int) -> bool:
        """Grow the pool to ``target`` samples in bounded merge rounds.

        Requires :attr:`lock`. Each round generates at most
        ``round_size`` samples (fanned across the shard's workers),
        merges them synchronously, re-seals the pool and bumps
        :attr:`version`. Returns whether any growth happened.
        """
        if len(self.pool) >= target:
            return False
        with trace.span(
            "serving/topup", scenario=self.spec.name, target=target
        ) as span:
            rounds = 0
            while len(self.pool) < target:
                room = min(self.round_size, target - len(self.pool))
                self.pool.grow(room)
                self.pool.compact()
                self.version += 1
                rounds += 1
            self.bytes = pool_memory_bytes(self.pool)
            span.set(rounds=rounds, num_samples=len(self.pool))
        return True

    def warm(self) -> None:
        """Grow to the spec's warm ``pool_size`` (requires :attr:`lock`)."""
        self.ensure_target(self.spec.pool_size)

    def close(self) -> None:
        """Shut the shard's worker pool down (idempotent)."""
        self.sampler.close()

    # -- solving --------------------------------------------------------

    def solve(
        self,
        k: int,
        solver_name: str = "UBG",
        ci_width: Optional[float] = None,
        width_provider: Optional[Callable[[], Optional[float]]] = None,
    ) -> Tuple[Dict, bool]:
        """Answer one ``(budget, solver, ci_width)`` query.

        Requires :attr:`lock`. Returns ``(response, cache_hit)``. The
        response's deterministic fields — ``seeds``, ``objective``,
        ``num_samples`` — depend only on the scenario spec and the
        query, never on timing, shard crashes or request interleaving
        (for ``ci_width`` queries the pool size additionally reflects
        earlier top-ups, so ``num_samples`` is "at least enough", not a
        fixed number).

        With ``ci_width`` set, the pool is topped up (doubling, in
        bounded merge rounds) until the relative CI width of ĉ(S) is
        at most the target or the pool reaches ``pool_size *
        MAX_POOL_FACTOR``. ``width_provider`` makes the target dynamic:
        it is re-read between rounds (the request batcher's
        ``tightest_width``), so followers coalesced onto this solve can
        tighten one shared top-up instead of queuing their own; when it
        returns ``None`` the request's own ``ci_width`` applies.
        """
        if solver_name not in SOLVERS:
            raise ServingError(
                f"unknown solver {solver_name!r} "
                f"(known: {', '.join(SOLVERS)})"
            )
        if k < 1:
            raise ServingError(f"budget must be >= 1, got {k}")
        key = (k, solver_name, ci_width)
        cached = self._solve_cache.get(key)
        if cached is not None and cached[0] == self.version:
            return cached[1], True
        max_pool = self.spec.pool_size * MAX_POOL_FACTOR
        solver_seed = derive_seed(self.spec.seed, "solver")
        while True:
            selection = make_solver(solver_name, solver_seed).solve(
                self.pool, k
            )
            seeds = sorted(selection.seeds)
            objective = evaluate_benefit(self.pool, seeds, engine="flat")
            n = len(self.pool)
            influenced = self.pool.influenced_count(seeds)
            halfwidth = self.pool.total_benefit * normal_halfwidth(
                bernoulli_sample_variance(influenced, n), n, delta=CI_DELTA
            )
            relative = halfwidth / objective if objective > 0 else None
            target = ci_width
            if width_provider is not None:
                dynamic = width_provider()
                if dynamic is not None:
                    target = (
                        dynamic if target is None else min(target, dynamic)
                    )
            if (
                target is None
                or n >= max_pool
                or relative is None
                or relative <= target
            ):
                break
            self.ensure_target(min(max_pool, max(n * 2, n + 1)))
        response = {
            "scenario": self.spec.name,
            "budget": k,
            "solver": solver_name,
            "seeds": seeds,
            "objective": objective,
            "num_samples": n,
            "pool_version": self.version,
            "ci_halfwidth": halfwidth,
            "ci_relative_width": relative,
            "pool_capped": n >= max_pool,
            "truncated": bool(selection.truncated),
        }
        self._solve_cache[key] = (self.version, response)
        return response, False

    def describe(self) -> Dict[str, object]:
        """JSON-ready snapshot for ``/status`` (requires :attr:`lock`)."""
        return {
            "scenario": self.spec.name,
            "num_samples": len(self.pool),
            "version": self.version,
            "bytes": self.bytes,
            "cached_solves": len(self._solve_cache),
            "idle_seconds": max(0.0, time.monotonic() - self.last_used),
        }


class ShardStore:
    """Registry of warm shards with accounting and LRU eviction.

    ``instances`` optionally pre-supplies ``(graph, communities)``
    pairs keyed by scenario name, bypassing
    :func:`~repro.serving.scenarios.build_instance` — how tests and the
    load benchmark serve synthetic instances. ``memory_budget_bytes``
    bounds the summed shard footprint; ``None`` disables eviction.
    """

    def __init__(
        self,
        scenarios: Dict[str, ScenarioSpec],
        instances: Optional[Dict[str, Tuple]] = None,
        *,
        workers: Optional[int] = None,
        round_size: int = 256,
        memory_budget_bytes: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
        on_evict: Optional[Callable[[str], None]] = None,
    ) -> None:
        if not scenarios:
            raise ServingError("a shard store needs at least one scenario")
        if memory_budget_bytes is not None and memory_budget_bytes < 1:
            raise ServingError(
                f"memory_budget_bytes must be >= 1, got "
                f"{memory_budget_bytes}"
            )
        self._specs = dict(scenarios)
        self._instances = dict(instances or {})
        self.workers = workers
        self.round_size = round_size
        self.memory_budget_bytes = memory_budget_bytes
        self.retry = retry
        self.fault_injector = fault_injector
        #: Called with the scenario name after each eviction, outside
        #: all store locks — the cluster wires the replica's lifecycle
        #: journal here (``shard.evicted`` events).
        self.on_evict = on_evict
        self._shards: Dict[str, WarmShard] = {}
        self._lock = threading.Lock()
        #: Serialises cold-shard builds (expensive) without blocking
        #: registry reads for already-warm shards.
        self._build_lock = threading.Lock()
        self._closed = False
        self.counters = {"hits": 0, "misses": 0, "evictions": 0}

    def scenario_names(self) -> List[str]:
        """The servable scenario names, sorted."""
        return sorted(self._specs)

    def get(self, name: str) -> WarmShard:
        """The warm shard for scenario ``name``, building it if cold.

        Counts a hit when the shard is already resident, a miss when it
        has to be (re)built — an evicted shard rebuilt here regenerates
        the byte-identical pool, since the spec pins every seed.
        """
        with self._lock:
            if self._closed:
                raise ServingError("shard store is closed")
            shard = self._shards.get(name)
            if shard is not None:
                self.counters["hits"] += 1
                metrics.inc("serving.shards.hits")
                shard.touch()
                return shard
            spec = self._specs.get(name)
        if spec is None:
            raise ServingError(
                f"unknown scenario {name!r} "
                f"(known: {', '.join(self.scenario_names())})"
            )
        with self._build_lock:
            with self._lock:
                shard = self._shards.get(name)
                if shard is not None:
                    self.counters["hits"] += 1
                    metrics.inc("serving.shards.hits")
                    shard.touch()
                    return shard
                self.counters["misses"] += 1
                metrics.inc("serving.shards.misses")
            instance = self._instances.get(name)
            if instance is None:
                instance = build_instance(spec)
            graph, communities = instance
            shard = WarmShard(
                spec,
                graph,
                communities,
                workers=self.workers,
                round_size=self.round_size,
                retry=self.retry,
                fault_injector=self.fault_injector,
            )
            with self._lock:
                if self._closed:
                    shard.close()
                    raise ServingError("shard store is closed")
                self._shards[name] = shard
            return shard

    def total_bytes(self) -> int:
        """Summed footprint of all resident shards."""
        with self._lock:
            return sum(shard.bytes for shard in self._shards.values())

    def evict_to_budget(self, protect: Optional[str] = None) -> List[str]:
        """Evict cold shards, oldest first, until under the byte budget.

        ``protect`` names a shard that must survive this pass (the one
        that just served a request). Shards whose lock is held are
        skipped — an in-flight solve is never cut down; they become
        eligible again on the next pass. Returns the evicted names.
        """
        evicted: List[str] = []
        skipped: set = set()
        budget = self.memory_budget_bytes
        while budget is not None:
            with self._lock:
                total = sum(s.bytes for s in self._shards.values())
                if total <= budget:
                    break
                candidates = sorted(
                    (shard.last_used, name)
                    for name, shard in self._shards.items()
                    if name != protect and name not in skipped
                )
                if not candidates:
                    break
                name = candidates[0][1]
                shard = self._shards[name]
                if not shard.lock.acquire(blocking=False):
                    skipped.add(name)  # busy: never evict mid-request
                    continue
                del self._shards[name]
            try:
                shard.close()
            finally:
                shard.lock.release()
            self.counters["evictions"] += 1
            metrics.inc("serving.shards.evictions")
            evicted.append(name)
            if self.on_evict is not None:
                self.on_evict(name)
        self._publish_gauges()
        return evicted

    def _publish_gauges(self) -> None:
        with self._lock:
            active = len(self._shards)
            total = sum(s.bytes for s in self._shards.values())
        metrics.set_gauge("serving.shards.active", active)
        metrics.set_gauge("serving.shards.bytes", total)

    def status(self) -> Dict[str, object]:
        """JSON-ready store snapshot for ``/status``."""
        with self._lock:
            shards = dict(self._shards)
            counters = dict(self.counters)
        details = []
        for name in sorted(shards):
            shard = shards[name]
            with shard.lock:
                details.append(shard.describe())
        return {
            "scenarios": self.scenario_names(),
            "shards": details,
            "counters": counters,
            "total_bytes": sum(d["bytes"] for d in details),
            "memory_budget_bytes": self.memory_budget_bytes,
        }

    def close(self) -> None:
        """Shut every shard down and refuse further requests."""
        with self._lock:
            self._closed = True
            shards = list(self._shards.values())
            self._shards.clear()
        for shard in shards:
            shard.close()
