"""Reusable load harness for the serving layer (single server or cluster).

PR 6's benchmark grew an ad-hoc thread-pool flood; this module distils
it into something the serving benchmarks, the chaos floors and ad-hoc
soak tests all share:

- :class:`LoadPhase` — a named batch of queries fired by ``clients``
  concurrent threads, optionally with a **chaos hook**: a callable
  fired exactly once when the phase's completed-request count crosses
  ``chaos_after`` (kill a replica, open a latency
  :class:`~repro.utils.faults.FaultInjector` window, …). Firing on a
  *count* rather than a timer keeps chaos deterministic relative to
  load progress, not wall clock.
- :class:`PhaseResult` — per-request statuses, bodies and latencies,
  with :meth:`~PhaseResult.percentiles` (p50/p95/p99) and
  :meth:`~PhaseResult.golden`, which maps each distinct query to its
  canonical answer bytes and *fails loudly* on any non-200 or any
  disagreement between duplicate queries — the zero-client-visible-
  errors and byte-identity assertions of the chaos floors.
- :class:`LoadGenerator` — drives phases against one HTTP address
  (shard server or cluster router; both speak the same ``/solve``).

Everything is stdlib: ``http.client`` per request (connection per
request, like real independent clients), ``ThreadPoolExecutor`` for the
client fleet.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ClusterError


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) of an ascending-sorted sequence.

    Nearest-rank on an already-sorted list — the same definition PR 6's
    benchmark used, kept here so recorded manifests stay comparable.
    """
    if not sorted_values:
        raise ClusterError("cannot take a percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ClusterError(f"percentile must be within [0, 100], got {q}")
    rank = max(0, min(len(sorted_values) - 1,
                      round(q / 100.0 * len(sorted_values)) - 1))
    return sorted_values[rank]


@dataclass(frozen=True)
class LoadPhase:
    """One named load phase: queries, concurrency, optional chaos.

    ``queries`` are ``/solve`` payload dicts; they are dealt to
    ``clients`` worker threads round-robin, each request on its own
    connection. ``chaos`` (if set) fires exactly once, inline in
    whichever client thread completes request number ``chaos_after``
    (``chaos_after <= 0`` fires it before the first request is sent).
    """

    name: str
    queries: Sequence[Dict]
    clients: int = 8
    chaos: Optional[Callable[[], None]] = None
    chaos_after: int = 0

    def __post_init__(self) -> None:
        if not self.queries:
            raise ClusterError(f"phase {self.name!r} has no queries")
        if self.clients < 1:
            raise ClusterError(
                f"phase {self.name!r} needs >= 1 client, got {self.clients}"
            )


@dataclass
class PhaseResult:
    """Everything one phase observed, ready for assertions.

    ``responses[i]`` is ``(status, body_bytes)`` for ``queries[i]``;
    ``latencies[i]`` its seconds. ``errors`` collects transport-level
    failures (connection refused/reset) as strings — a chaos floor
    asserting *zero client-visible errors* checks both ``errors == []``
    and every status == 200.
    """

    phase: str
    queries: List[Dict] = field(default_factory=list)
    responses: List[Tuple[int, bytes]] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    duration_seconds: float = 0.0
    #: ``X-Repro-Trace-Id`` response header per request (``None`` when
    #: the response carried none — an un-instrumented server, or a
    #: transport error). The chaos floors assert
    #: :meth:`traceability` ``== 1.0``: every answer attributable to
    #: one distributed trace.
    trace_ids: List[Optional[str]] = field(default_factory=list)
    #: ``Server-Timing`` response header per request (phase breakdown
    #: like ``parse;dur=0.1, compute;dur=12.3, router;dur=13.0``).
    server_timings: List[Optional[str]] = field(default_factory=list)

    def statuses(self) -> List[int]:
        """The HTTP status of every answered request."""
        return [status for status, _ in self.responses]

    def traceability(self) -> float:
        """Fraction of *answered* requests carrying a trace id.

        Only answered requests count (a request lost to a transport
        error has no response to carry a header); a phase with no
        answers at all is 0.0-traceable by definition.
        """
        answered = [
            trace_id
            for (status, _), trace_id in zip(self.responses, self.trace_ids)
            if status != 0
        ]
        if not answered:
            return 0.0
        return sum(1 for t in answered if t) / len(answered)

    def percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 request latency in seconds."""
        ordered = sorted(self.latencies)
        return {
            "p50": percentile(ordered, 50),
            "p95": percentile(ordered, 95),
            "p99": percentile(ordered, 99),
        }

    def golden(self) -> Dict[str, bytes]:
        """Canonical answer bytes per distinct query — or fail loudly.

        Raises :class:`~repro.errors.ClusterError` if the phase saw any
        transport error, any non-200 status, or two duplicate queries
        answered with different *deterministic* fields. Volatile fields
        (``batched``, ``cache_hit`` — which legitimately differ between
        a leader and its followers, or across replicas) are stripped
        before comparison; what remains is exactly the determinism
        contract (``seeds``, ``objective``, ``num_samples``, …).
        """
        if self.errors:
            raise ClusterError(
                f"phase {self.phase!r} saw {len(self.errors)} transport "
                f"errors, first: {self.errors[0]}"
            )
        canonical: Dict[str, bytes] = {}
        for query, (status, body) in zip(self.queries, self.responses):
            if status != 200:
                raise ClusterError(
                    f"phase {self.phase!r} query {query} answered "
                    f"{status}: {body[:200]!r}"
                )
            key = json.dumps(query, sort_keys=True)
            stripped = self._strip_volatile(body)
            seen = canonical.get(key)
            if seen is None:
                canonical[key] = stripped
            elif seen != stripped:
                raise ClusterError(
                    f"phase {self.phase!r} answered {key} two ways:\n"
                    f"  {seen!r}\n  {stripped!r}"
                )
        return canonical

    @staticmethod
    def _strip_volatile(body: bytes) -> bytes:
        payload = json.loads(body.decode("utf-8"))
        payload.pop("batched", None)
        payload.pop("cache_hit", None)
        return json.dumps(payload, sort_keys=True).encode("utf-8")


class LoadGenerator:
    """Fire :class:`LoadPhase` batches at one serving address."""

    def __init__(
        self, host: str, port: int, *, timeout: float = 300.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _post(
        self, payload: Dict
    ) -> Tuple[int, bytes, Optional[str], Optional[str]]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(
                "POST",
                "/solve",
                body=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            return (
                response.status,
                response.read(),
                response.getheader("X-Repro-Trace-Id"),
                response.getheader("Server-Timing"),
            )
        finally:
            conn.close()

    def run_phase(self, phase: LoadPhase) -> PhaseResult:
        """Run one phase to completion and collect its result.

        Requests run on a ``clients``-wide thread pool; results land at
        their query's index so duplicate-query comparison stays
        aligned. The chaos hook fires inline in the client thread whose
        completion crosses ``chaos_after`` — by then at least that many
        answers exist, so a "kill mid-phase" floor is guaranteed some
        pre-kill and some post-kill traffic.
        """
        queries = list(phase.queries)
        result = PhaseResult(phase=phase.name, queries=queries)
        result.responses = [(0, b"")] * len(queries)
        result.latencies = [0.0] * len(queries)
        result.trace_ids = [None] * len(queries)
        result.server_timings = [None] * len(queries)
        completed = 0
        chaos_fired = phase.chaos is None
        lock = threading.Lock()
        if not chaos_fired and phase.chaos_after <= 0:
            phase.chaos()
            chaos_fired = True

        def _one(index: int) -> None:
            nonlocal completed, chaos_fired
            began = time.perf_counter()
            try:
                status, body, trace_id, timing = self._post(queries[index])
                result.responses[index] = (status, body)
                result.trace_ids[index] = trace_id
                result.server_timings[index] = timing
            except (OSError, http.client.HTTPException) as exc:
                with lock:
                    result.errors.append(f"{queries[index]}: {exc}")
            finally:
                result.latencies[index] = time.perf_counter() - began
            fire = False
            with lock:
                completed += 1
                if not chaos_fired and completed >= phase.chaos_after:
                    chaos_fired = True
                    fire = True
            if fire:
                phase.chaos()

        began = time.perf_counter()
        with ThreadPoolExecutor(max_workers=phase.clients) as pool:
            futures = [
                pool.submit(_one, index) for index in range(len(queries))
            ]
            for future in futures:
                future.result()
        result.duration_seconds = time.perf_counter() - began
        return result

    def run(self, phases: Sequence[LoadPhase]) -> List[PhaseResult]:
        """Run phases sequentially; returns one result per phase."""
        return [self.run_phase(phase) for phase in phases]
