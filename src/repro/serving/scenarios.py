"""Scenario specs: the (graph, community-scenario) keys shards warm up.

A :class:`ScenarioSpec` pins everything that determines a shard's
sample distribution — dataset, scale, threshold policy, diffusion
model, seed — so two servers configured with the same spec build
byte-identical pools (the same guarantee the offline pipeline makes).
:func:`build_instance` materialises the spec into the ``(graph,
communities)`` pair a :class:`~repro.serving.shards.WarmShard` samples
from; :func:`default_scenarios` builds one spec per requested dataset.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Sequence, Tuple

from repro.communities.louvain import louvain_communities
from repro.communities.structure import CommunityStructure
from repro.communities.thresholds import (
    build_structure,
    constant_thresholds,
    fractional_thresholds,
)
from repro.datasets.registry import DATASETS, load_dataset
from repro.errors import ServingError
from repro.graph.digraph import DiGraph
from repro.rng import derive_seed


@dataclass(frozen=True)
class ScenarioSpec:
    """Immutable description of one servable IMC instance.

    ``name`` is the key clients send in ``/solve`` payloads; everything
    else pins the instance so a shard rebuilt after eviction (or on a
    different server) regenerates the *same* pool distribution.
    ``pool_size`` is the warm target: the sample count a shard grows to
    before answering its first request.
    """

    name: str
    dataset: str
    scale: float = 0.2
    threshold: str = "bounded"
    size_cap: int = 8
    model: str = "ic"
    seed: int = 7
    pool_size: int = 600

    def __post_init__(self) -> None:
        if self.dataset not in DATASETS:
            raise ServingError(
                f"scenario {self.name!r} names unknown dataset "
                f"{self.dataset!r} (known: {', '.join(DATASETS)})"
            )
        if self.threshold not in ("bounded", "fractional"):
            raise ServingError(
                f"scenario {self.name!r} threshold must be 'bounded' or "
                f"'fractional', got {self.threshold!r}"
            )
        if self.pool_size < 1:
            raise ServingError(
                f"scenario {self.name!r} pool_size must be >= 1, got "
                f"{self.pool_size}"
            )

    def describe(self) -> Dict[str, object]:
        """JSON-ready copy of the spec (for ``/status``)."""
        return asdict(self)


def build_instance(spec: ScenarioSpec) -> Tuple[DiGraph, CommunityStructure]:
    """Materialise ``spec`` into its ``(graph, communities)`` pair.

    The same pipeline as ``python -m repro solve``: load the dataset
    stand-in at ``spec.scale``, detect Louvain communities, attach the
    threshold policy, then freeze the graph into its CSR snapshot so
    shard workers sample via the array-native kernels.
    """
    dataset = load_dataset(
        spec.dataset, scale=spec.scale, seed=derive_seed(spec.seed, "dataset")
    )
    graph = dataset.graph
    blocks = louvain_communities(graph, seed=derive_seed(spec.seed, "louvain"))
    policy = (
        constant_thresholds(2)
        if spec.threshold == "bounded"
        else fractional_thresholds(0.5)
    )
    communities = build_structure(
        blocks, size_cap=spec.size_cap, threshold_policy=policy
    )
    return graph.freeze(), communities


def default_scenarios(
    datasets: Sequence[str],
    *,
    scale: float = 0.2,
    threshold: str = "bounded",
    size_cap: int = 8,
    model: str = "ic",
    seed: int = 7,
    pool_size: int = 600,
) -> Dict[str, ScenarioSpec]:
    """One scenario per dataset name, sharing the remaining knobs.

    The scenario name is the dataset name — the shape the CLI's
    ``--datasets facebook,wiki`` flag produces.
    """
    specs = {}
    for name in datasets:
        specs[name] = ScenarioSpec(
            name=name,
            dataset=name,
            scale=scale,
            threshold=threshold,
            size_cap=size_cap,
            model=model,
            seed=seed,
            pool_size=pool_size,
        )
    return specs
