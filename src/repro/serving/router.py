"""Cluster front door: rendezvous routing, circuit breakers, failover.

The router is the single address clients talk to when the serving layer
runs as a multi-replica cluster (:mod:`repro.serving.cluster`). It owns
three jobs:

- **Placement.** Scenario keys are consistent-hashed to replicas with
  rendezvous (highest-random-weight) hashing
  (:func:`rendezvous_order`), so each shard stays warm in exactly one
  process and adding/removing a replica remaps only that replica's
  scenarios — no global reshuffle, no cold sweep across the fleet.
- **Failure isolation.** Each replica gets a :class:`CircuitBreaker`:
  consecutive forwarding failures trip it open, open breakers are
  skipped during candidate selection, and after a cooldown a single
  half-open probe decides whether the replica is back.
- **Failover.** A failed forward retries against the next replica in
  the key's rendezvous order. This is safe *because solves are
  deterministic*: every replica computes byte-identical deterministic
  fields (``seeds``, ``objective``, ``num_samples``) for the same
  query, so at-least-once delivery cannot change an answer — the
  failover target merely pays a cold-build before replying.

The router never parses a replica's answer: response bytes stream back
unchanged, preserving byte-identity end to end. Framing hardening is
shared with the shard server via
:func:`repro.serving.server.read_json_body`.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from http.server import BaseHTTPRequestHandler
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple
from hashlib import sha256

from repro.errors import ClusterError, ServingError
from repro.obs import metrics, trace
from repro.obs.events import EventJournal
from repro.obs.metrics import to_prometheus_text
from repro.obs.tracer import PARENT_HEADER, TRACE_HEADER, new_trace_id
from repro.serving.fleet import FleetMetricsAggregator
from repro.serving.server import (
    GracefulHTTPServer,
    RequestRejected,
    read_json_body,
)
from repro.utils.faults import FaultInjector

#: Fault-injection site fired before each forward attempt — chaos tests
#: inject latency (or errors) into the router's data path here.
FORWARD_SITE = "router_forward"


def _weight(key: str, replica_id: str) -> int:
    """Deterministic rendezvous weight of ``replica_id`` for ``key``."""
    digest = sha256(f"{key}|{replica_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def rendezvous_order(key: str, replica_ids: Iterable[str]) -> List[str]:
    """Replica ids by descending rendezvous weight for ``key``.

    The first element is the key's home replica; the rest are its
    failover successors in preference order. The order is a pure
    function of the ids present: removing one id deletes its entry and
    shifts nothing else, which is exactly the "only the removed
    replica's scenarios remap" stability property the cluster relies on
    (property-tested in ``tests/test_prop_router.py``). Ties — sha256
    collisions, in practice unseen — break on the id itself so the
    order stays total and deterministic.
    """
    ids = list(replica_ids)
    if len(set(ids)) != len(ids):
        raise ClusterError(f"replica ids must be unique, got {ids}")
    return sorted(ids, key=lambda rid: (_weight(key, rid), rid), reverse=True)


def assign_replica(key: str, replica_ids: Iterable[str]) -> str:
    """The home replica for ``key`` — head of its rendezvous order."""
    order = rendezvous_order(key, replica_ids)
    if not order:
        raise ClusterError("cannot assign a key across zero replicas")
    return order[0]


class ReplicaEndpoint(NamedTuple):
    """Where one replica listens, plus the supervisor's health verdict."""

    replica_id: str
    host: str
    port: int
    healthy: bool


class CircuitBreaker:
    """Per-replica failure gate: closed → open → half-open → closed.

    ``failure_threshold`` *consecutive* failures trip the breaker open;
    while open, :meth:`allow` refuses traffic until ``reset_seconds``
    elapsed, then admits exactly one half-open probe — its success
    closes the breaker, its failure re-opens it for another full
    cooldown. The clock is injectable so tests drive transitions
    without sleeping. Thread-safe: the router's handler threads call
    :meth:`allow` / :meth:`record_failure` concurrently.

    ``on_transition`` (if given) is called with the new state name
    after every state *change*, outside the breaker lock — the router
    uses it to stream ``breaker.*`` events to the cluster journal.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_seconds: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ClusterError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_seconds < 0:
            raise ClusterError(
                f"reset_seconds must be non-negative, got {reset_seconds}"
            )
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.on_transition = on_transition
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    def _notify(self, state: str) -> None:
        # Called outside self._lock so a slow observer (journal write)
        # never blocks breaker decisions on other threads.
        if self.on_transition is not None:
            self.on_transition(state)

    def state(self) -> str:
        """Current state name (``closed`` / ``open`` / ``half-open``)."""
        with self._lock:
            transitioned = self._maybe_half_open()
            state = self._state
        if transitioned:
            self._notify(state)
        return state

    def _maybe_half_open(self) -> bool:
        # Requires self._lock; returns True when the state changed.
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.reset_seconds
        ):
            self._state = "half-open"
            self._probing = False
            return True
        return False

    def allow(self) -> bool:
        """Whether a request may be sent to this replica right now.

        In half-open state only the *first* caller gets through (the
        probe); concurrent callers are refused until the probe's
        outcome is recorded.
        """
        with self._lock:
            transitioned = self._maybe_half_open()
            state = self._state
            if state == "closed":
                admitted = True
            elif state == "half-open" and not self._probing:
                self._probing = True
                admitted = True
            else:
                admitted = False
        if transitioned:
            self._notify(state)
        return admitted

    def record_success(self) -> None:
        """A forward succeeded: reset failures, close the breaker."""
        with self._lock:
            transitioned = self._state != "closed"
            self._state = "closed"
            self._failures = 0
            self._probing = False
        if transitioned:
            self._notify("closed")

    def record_failure(self) -> bool:
        """A forward failed; returns ``True`` if this *opened* the breaker.

        A half-open probe failure re-opens immediately (and counts as an
        opening); in closed state the breaker opens once consecutive
        failures reach the threshold.
        """
        with self._lock:
            if self._state == "half-open":
                self._state = "open"
                self._opened_at = self._clock()
                self._probing = False
                opened = True
            else:
                self._failures += 1
                opened = self._state == "closed" and (
                    self._failures >= self.failure_threshold
                )
                if opened:
                    self._state = "open"
                    self._opened_at = self._clock()
        if opened:
            self._notify("open")
        return opened


class _ReplicaPool:
    """Idle keep-alive connections to one replica (bounded LIFO).

    LIFO keeps the hottest connection hottest; connections beyond
    ``size`` close instead of parking. The pool never validates an
    idle connection — staleness (replica restarted, server-side idle
    timeout) surfaces as a send/read error, which the router retries
    once on a fresh connection before charging the breaker.
    """

    __slots__ = ("size", "_idle", "_lock")

    def __init__(self, size: int) -> None:
        self.size = size
        self._idle: List[http.client.HTTPConnection] = []
        self._lock = threading.Lock()

    def acquire(self) -> Optional[http.client.HTTPConnection]:
        with self._lock:
            return self._idle.pop() if self._idle else None

    def release(self, conn: http.client.HTTPConnection) -> None:
        with self._lock:
            if len(self._idle) < self.size:
                self._idle.append(conn)
                return
        conn.close()

    def idle(self) -> int:
        with self._lock:
            return len(self._idle)

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()


class RouterApp:
    """Transport-independent routing logic for the cluster front door.

    ``replicas`` is a zero-argument callable returning the current
    :class:`ReplicaEndpoint` list — the supervisor's live view, so a
    restarted replica rejoins routing the moment its health flips back
    without the router holding a reference into supervisor internals.

    Observability wiring (all optional): ``journal`` receives
    ``breaker.*`` transition events; ``supervisor_status`` (a callable)
    folds the supervisor's restart/incident view into ``/status``; the
    :class:`~repro.serving.fleet.FleetMetricsAggregator` behind
    ``/metrics`` is always constructed, so even a single-replica router
    serves the fleet view.
    """

    def __init__(
        self,
        replicas: Callable[[], List[ReplicaEndpoint]],
        *,
        breaker_threshold: int = 3,
        breaker_reset_seconds: float = 1.0,
        forward_timeout: float = 300.0,
        fault_injector: Optional[FaultInjector] = None,
        pool_connections: bool = True,
        pool_size: int = 8,
        journal: Optional[EventJournal] = None,
        supervisor_status: Optional[Callable[[], Dict]] = None,
        scrape_cache_seconds: float = 1.0,
    ) -> None:
        self.replicas = replicas
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_seconds = breaker_reset_seconds
        self.forward_timeout = forward_timeout
        self.faults = fault_injector
        self.pool_connections = pool_connections
        self.pool_size = pool_size
        self.journal = journal
        self.supervisor_status = supervisor_status
        self.fleet = FleetMetricsAggregator(
            replicas, cache_seconds=scrape_cache_seconds
        )
        self.started = time.monotonic()
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._pools: Dict[str, _ReplicaPool] = {}
        self.counters = {"routed": 0, "failovers": 0, "failed": 0}

    # -- bookkeeping ----------------------------------------------------

    def breaker(self, replica_id: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker for one replica."""
        with self._lock:
            breaker = self._breakers.get(replica_id)
            if breaker is None:
                breaker = self._breakers[replica_id] = CircuitBreaker(
                    self.breaker_threshold,
                    self.breaker_reset_seconds,
                    on_transition=lambda state, rid=replica_id: (
                        self._breaker_event(rid, state)
                    ),
                )
            return breaker

    def _breaker_event(self, replica_id: str, state: str) -> None:
        journal = self.journal
        if journal is None:
            return
        if state == "open":
            journal.emit("breaker.opened", replica=replica_id)
        elif state == "half-open":
            journal.emit("breaker.half_open", replica=replica_id)
        else:
            journal.emit("breaker.closed", replica=replica_id)

    def _pool(self, replica_id: str) -> _ReplicaPool:
        with self._lock:
            pool = self._pools.get(replica_id)
            if pool is None:
                pool = self._pools[replica_id] = _ReplicaPool(self.pool_size)
            return pool

    def close_pools(self) -> None:
        """Close every idle pooled connection (router shutdown)."""
        with self._lock:
            pools = list(self._pools.values())
        for pool in pools:
            pool.close()

    def _count(self, field: str) -> None:
        with self._lock:
            self.counters[field] += 1

    # -- endpoints ------------------------------------------------------

    def healthz(self) -> Dict[str, str]:
        """Liveness payload for the router process itself."""
        return {"status": "ok"}

    def status(self) -> Dict[str, object]:
        """Fleet-truth snapshot: one curl answers "is the cluster ok".

        Per replica: supervisor health, breaker state, idle pooled
        connections and the age of the last successful metrics scrape;
        plus router counters, pooling config and — when wired by
        :class:`~repro.serving.cluster.ServingCluster` — the
        supervisor's own restart/incident view.
        """
        endpoints = self.replicas()
        with self._lock:
            counters = dict(self.counters)
            breakers = {
                rid: breaker for rid, breaker in self._breakers.items()
            }
            pools = dict(self._pools)
        payload: Dict[str, object] = {
            "replicas": [
                {
                    "replica_id": ep.replica_id,
                    "host": ep.host,
                    "port": ep.port,
                    "healthy": ep.healthy,
                    "breaker": (
                        breakers[ep.replica_id].state()
                        if ep.replica_id in breakers
                        else "closed"
                    ),
                    "pooled_connections": (
                        pools[ep.replica_id].idle()
                        if ep.replica_id in pools
                        else 0
                    ),
                    "last_scrape_age_seconds": self.fleet.scrape_age(
                        ep.replica_id
                    ),
                }
                for ep in endpoints
            ],
            "requests": counters,
            "uptime_seconds": time.monotonic() - self.started,
            "connection_pooling": {
                "enabled": self.pool_connections,
                "pool_size": self.pool_size,
            },
        }
        if self.supervisor_status is not None:
            payload["supervisor"] = self.supervisor_status()
        return payload

    def prometheus(self) -> str:
        """Prometheus text exposition of the *fleet*: the router's own
        registry merged with every scraped replica snapshot, plus the
        derived ``cluster.slo.*`` gauges."""
        return to_prometheus_text(self.fleet.aggregate()["snapshot"])

    def metrics_json(self) -> Dict[str, object]:
        """The full aggregation document (``GET /metrics.json``)."""
        return self.fleet.aggregate()

    # -- routing --------------------------------------------------------

    def candidates(self, scenario: str) -> List[ReplicaEndpoint]:
        """Failover-ordered forwarding targets for ``scenario``.

        Rendezvous order over *all* replicas, filtered down to those
        both supervisor-healthy and breaker-admitted. When the filter
        leaves nothing (every replica mid-restart, say), the full
        rendezvous order is returned instead — trying a probably-dead
        replica and failing loudly beats refusing without trying, and a
        replica that just recovered answers correctly either way.
        """
        endpoints = {ep.replica_id: ep for ep in self.replicas()}
        order = rendezvous_order(scenario, endpoints.keys())
        ranked = [endpoints[rid] for rid in order]
        available = [
            ep
            for ep in ranked
            if ep.healthy and self.breaker(ep.replica_id).allow()
        ]
        return available if available else ranked

    def route_solve(self, payload: Dict) -> Tuple[int, bytes]:
        """Back-compat entry: :meth:`handle_solve` minus the headers."""
        status, response, _headers = self.handle_solve(payload)
        return status, response

    def handle_solve(
        self, payload: Dict, inbound_headers=None
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """Forward one ``/solve`` to its home replica, failing over.

        Returns ``(status, body_bytes, response_headers)`` with the
        winning replica's response bytes untouched — trace id and the
        ``Server-Timing`` breakdown travel as *headers* precisely so the
        body stays byte-identical with observability on or off.
        Candidates are tried in rendezvous order; a connection error or
        5xx records a breaker failure and moves on (4xx is the
        *client's* fault — it is returned as-is and charged to no
        replica). When every candidate fails, the answer is a 503
        carrying the per-replica error detail.

        Trace contract: the router adopts an inbound ``X-Repro-Trace-Id``
        (or mints one), opens a ``router/solve`` span, and every forward
        attempt is a sibling ``router/forward`` span whose id rides the
        ``X-Repro-Parent-Span`` header — so a failover's retries share
        one trace id and re-parent the replica-side spans correctly.
        """
        began = time.perf_counter()
        metrics.inc("router.requests.total")
        scenario = payload.get("scenario") if isinstance(payload, dict) else None
        if not isinstance(scenario, str) or not scenario:
            raise ServingError("solve payload needs a 'scenario' string")
        inbound = inbound_headers or {}
        trace_id = inbound.get(TRACE_HEADER) or None
        if trace_id is None:
            trace_id = new_trace_id()
            metrics.inc("router.trace.minted")
        else:
            metrics.inc("router.trace.adopted")
        remote_parent = inbound.get(PARENT_HEADER) or None
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        with trace.context(trace_id, remote_parent):
            with trace.span("router/solve", scenario=scenario):
                status, response, replica_headers = self._route(
                    scenario, body
                )
        elapsed = time.perf_counter() - began
        metrics.observe("router.request.seconds", elapsed)
        headers = {TRACE_HEADER: trace_id}
        router_timing = f"router;dur={elapsed * 1e3:.3f}"
        upstream_timing = _header(replica_headers, "Server-Timing")
        headers["Server-Timing"] = (
            f"{upstream_timing}, {router_timing}"
            if upstream_timing
            else router_timing
        )
        return status, response, headers

    def _route(
        self, scenario: str, body: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """The candidate loop: try, charge breakers, fail over."""
        candidates = self.candidates(scenario)
        if not candidates:
            metrics.inc("router.requests.failed")
            self._count("failed")
            return (
                503,
                json.dumps({"error": "no replicas available"}).encode(
                    "utf-8"
                ),
                {},
            )
        errors: List[str] = []
        for attempt, endpoint in enumerate(candidates):
            if attempt > 0:
                self._count("failovers")
                metrics.inc("router.failovers")
            breaker = self.breaker(endpoint.replica_id)
            try:
                with trace.span(
                    "router/forward",
                    replica=endpoint.replica_id,
                    attempt=attempt,
                ):
                    if self.faults is not None:
                        self.faults.fire(
                            FORWARD_SITE, replica=endpoint.replica_id
                        )
                    status, replica_headers, response = self._forward(
                        endpoint, body, trace.propagation_headers()
                    )
            except (OSError, http.client.HTTPException) as exc:
                if breaker.record_failure():
                    metrics.inc("router.circuit.opened")
                errors.append(f"{endpoint.replica_id}: {exc}")
                continue
            if status >= 500:
                if breaker.record_failure():
                    metrics.inc("router.circuit.opened")
                errors.append(f"{endpoint.replica_id}: HTTP {status}")
                continue
            breaker.record_success()
            self._count("routed")
            if status >= 400:
                metrics.inc("router.requests.failed")
            return status, response, replica_headers
        metrics.inc("router.requests.failed")
        self._count("failed")
        return (
            503,
            json.dumps(
                {"error": "all replicas failed", "detail": errors}
            ).encode("utf-8"),
            {},
        )

    def _connect(self, endpoint: ReplicaEndpoint) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            endpoint.host, endpoint.port, timeout=self.forward_timeout
        )

    def _roundtrip(
        self,
        conn: http.client.HTTPConnection,
        body: bytes,
        extra_headers: Dict[str, str],
    ) -> Tuple[int, Dict[str, str], bytes, bool]:
        headers = {"Content-Type": "application/json"}
        headers.update(extra_headers)
        conn.request("POST", "/solve", body=body, headers=headers)
        response = conn.getresponse()
        data = response.read()
        reusable = not response.will_close
        return response.status, dict(response.getheaders()), data, reusable

    def _forward(
        self,
        endpoint: ReplicaEndpoint,
        body: bytes,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """POST ``body`` to one replica's ``/solve``; return its answer.

        With pooling on, reuses an idle keep-alive connection when one
        exists. A reused connection that fails to round-trip gets ONE
        retry on a fresh connection — the failure is indistinguishable
        from an idle connection gone stale (replica restarted under the
        same port, server-side timeout), and charging the breaker for
        router-side connection hygiene would trip failover spuriously.
        A fresh connection's failure propagates to the caller as a real
        replica failure.
        """
        extra_headers = extra_headers or {}
        pool = (
            self._pool(endpoint.replica_id) if self.pool_connections else None
        )
        conn = pool.acquire() if pool is not None else None
        reused = conn is not None
        if conn is None:
            conn = self._connect(endpoint)
        try:
            status, headers, data, reusable = self._roundtrip(
                conn, body, extra_headers
            )
        except (OSError, http.client.HTTPException):
            conn.close()
            if not reused:
                raise
            conn = self._connect(endpoint)
            try:
                status, headers, data, reusable = self._roundtrip(
                    conn, body, extra_headers
                )
            except (OSError, http.client.HTTPException):
                conn.close()
                raise
        if pool is not None and reusable:
            pool.release(conn)
        else:
            conn.close()
        return status, headers, data


def _header(headers: Dict[str, str], name: str) -> Optional[str]:
    """Case-insensitive lookup in a plain header dict."""
    for key, value in headers.items():
        if key.lower() == name.lower():
            return value
    return None


class RouterHTTPServer(GracefulHTTPServer):
    """Threaded HTTP server bound to a :class:`RouterApp`."""

    def __init__(self, address: Tuple[str, int], app: RouterApp) -> None:
        super().__init__(address, _RouterHandler)
        self.app = app


class _RouterHandler(BaseHTTPRequestHandler):
    """JSON adapter between HTTP and :class:`RouterApp`."""

    server_version = "repro-imc-router/1.0"
    protocol_version = "HTTP/1.1"
    timeout = 60

    def log_message(self, *args) -> None:  # noqa: D102 - silence stderr
        pass

    @property
    def app(self) -> RouterApp:
        return self.server.app  # type: ignore[attr-defined]

    def _send(
        self,
        code: int,
        body: bytes,
        content_type: str,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: Dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(code, body, "application/json")

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/healthz":
                self._send_json(200, self.app.healthz())
            elif self.path == "/status":
                self._send_json(200, self.app.status())
            elif self.path == "/metrics":
                self._send(
                    200,
                    self.app.prometheus().encode("utf-8"),
                    "text/plain; version=0.0.4",
                )
            elif self.path == "/metrics.json":
                self._send_json(200, self.app.metrics_json())
            else:
                self._send_json(404, {"error": f"no such path {self.path}"})
        except Exception as exc:  # noqa: BLE001 - answer, never drop
            self._send_json(500, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/solve":
                payload = read_json_body(self.headers, self.rfile)
                status, body, headers = self.app.handle_solve(
                    payload, self.headers
                )
                self._send(status, body, "application/json", headers)
            elif self.path == "/shutdown":
                self._send_json(200, {"status": "shutting down"})
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
            else:
                self._send_json(404, {"error": f"no such path {self.path}"})
        except RequestRejected as exc:
            self.close_connection = True
            self._send_json(exc.status, {"error": exc.message})
        except ServingError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - answer, never drop
            self._send_json(500, {"error": str(exc)})


def start_router_server(
    app: RouterApp, host: str = "127.0.0.1", port: int = 0
) -> RouterHTTPServer:
    """Start serving ``app`` on a daemon thread; returns the server.

    ``port=0`` binds an ephemeral port — read the actual one from
    ``server.server_address[1]``. The caller owns shutdown (via
    ``server.drain()`` for a graceful stop, or ``server.shutdown();
    server.server_close()``).
    """
    server = RouterHTTPServer((host, port), app)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-router", daemon=True
    )
    thread.start()
    server._serve_thread = thread  # type: ignore[attr-defined]
    return server
