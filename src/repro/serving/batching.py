"""Request coalescing: concurrent identical requests share one solve.

A burst of clients asking for the same ``(scenario, budget, solver,
ci_width)`` should cost one solver run, not N. The first thread to
arrive for a key becomes the *leader* and computes; threads arriving
while the leader is in flight become *followers* and block on the
flight's event, then share the leader's result (or exception). The
flight is unregistered before its event is set, so a request arriving
*after* completion starts a fresh flight — batching never serves stale
results; caching is the shard's job
(:meth:`repro.serving.shards.WarmShard.solve`).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Hashable, Optional, Tuple


class _Flight:
    """One in-progress computation plus the threads waiting on it."""

    __slots__ = ("done", "result", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.followers = 0


class RequestBatcher:
    """Coalesce concurrent calls with equal keys onto one computation.

    :meth:`run` returns ``(result, leader)`` where ``leader`` tells the
    caller whether *it* performed the computation (followers count as
    batched requests in the server's metrics). Exceptions raised by the
    leader propagate to every follower of the same flight, so a failed
    solve fails its whole batch loudly instead of hanging it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[Hashable, _Flight] = {}

    def run(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """Compute (as leader) or wait for (as follower) ``key``.

        The result object is shared between the leader and all its
        followers — treat it as read-only, or copy before mutating.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = self._flights[key] = _Flight()
                leader = True
            else:
                flight.followers += 1
                leader = False
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.result, False
        try:
            flight.result = compute()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            # Unregister *before* waking followers: anyone arriving now
            # starts a fresh flight instead of reading a finished one.
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
        return flight.result, True

    def in_flight(self) -> int:
        """Number of keys currently being computed (for ``/status``)."""
        with self._lock:
            return len(self._flights)
