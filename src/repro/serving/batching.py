"""Request coalescing: concurrent identical requests share one solve.

A burst of clients asking for the same ``(scenario, budget, solver)``
should cost one solver run, not N. The first thread to arrive for a key
becomes the *leader* and computes; threads arriving while the leader is
in flight become *followers* and block on the flight's event, then
share the leader's result (or exception). The flight is unregistered
before its event is set, so a request arriving *after* completion
starts a fresh flight — batching never serves stale results; caching is
the shard's job (:meth:`repro.serving.shards.WarmShard.solve`).

Flights additionally carry the ``ci_width`` targets of everyone in the
batch: requests for *different* precisions on the same shard coalesce
onto one pool top-up driven by the **tightest** width registered so far
(:meth:`RequestBatcher.tightest_width`, polled by the leader's solve
loop between merge rounds). Each follower is still answered at its own
width — the shard layer re-solves a follower whose requirement the
shared flight did not reach (see :meth:`repro.serving.server.ShardApp.solve`).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.obs import metrics

#: Sentinel distinguishing "no width supplied" from an explicit ``None``
#: (``None`` is a meaningful registration: no CI requirement).
_UNSET = object()


class _Flight:
    """One in-progress computation plus the threads waiting on it."""

    __slots__ = ("done", "result", "error", "followers", "widths")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.followers = 0
        #: ``ci_width`` targets registered by the leader and followers
        #: of this flight (``None`` entries mean "no requirement").
        self.widths: List[Optional[float]] = []


class RequestBatcher:
    """Coalesce concurrent calls with equal keys onto one computation.

    :meth:`run` returns ``(result, leader)`` where ``leader`` tells the
    caller whether *it* performed the computation (followers count as
    batched requests in the server's metrics). Exceptions raised by the
    leader propagate to every follower of the same flight, so a failed
    solve fails its whole batch loudly instead of hanging it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[Hashable, _Flight] = {}

    def run(
        self,
        key: Hashable,
        compute: Callable[[], Any],
        width: Any = _UNSET,
    ) -> Tuple[Any, bool]:
        """Compute (as leader) or wait for (as follower) ``key``.

        ``width`` optionally registers this request's ``ci_width``
        target on the flight, so a leader polling
        :meth:`tightest_width` mid-computation sees followers' tighter
        requirements and extends one shared pool top-up instead of the
        followers queuing their own.

        The result object is shared between the leader and all its
        followers — treat it as read-only, or copy before mutating.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = self._flights[key] = _Flight()
                leader = True
            else:
                flight.followers += 1
                leader = False
            if width is not _UNSET:
                flight.widths.append(width)
        if not leader:
            waited = time.perf_counter()
            flight.done.wait()
            metrics.observe(
                "serving.batch.wait.seconds", time.perf_counter() - waited
            )
            if flight.error is not None:
                raise flight.error
            return flight.result, False
        try:
            flight.result = compute()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            # Unregister *before* waking followers: anyone arriving now
            # starts a fresh flight instead of reading a finished one.
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
        return flight.result, True

    def tightest_width(self, key: Hashable) -> Optional[float]:
        """The smallest non-``None`` width registered on ``key``'s
        in-flight batch, or ``None`` when no width-carrying request is
        currently in flight for it.

        The leader's solve loop polls this between merge rounds — a
        follower registering a tighter width mid-flight tightens the
        shared target; targets only ever tighten, never loosen.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                return None
            widths = [w for w in flight.widths if w is not None]
        return min(widths) if widths else None

    def in_flight(self) -> int:
        """Number of keys currently being computed (for ``/status``)."""
        with self._lock:
            return len(self._flights)
