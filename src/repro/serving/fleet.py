"""Fleet metrics aggregation: scrape replicas, merge, derive SLO gauges.

Each replica process keeps its own ambient
:class:`~repro.obs.metrics.MetricsRegistry` and exposes it at
``GET /metrics.json`` (raw snapshot) and ``GET /metrics`` (Prometheus
text). The router's :class:`FleetMetricsAggregator` scrapes the JSON
form from every replica the supervisor reports, merges the snapshots
into one fleet view via
:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot` — counters
summed, gauges kept apart under per-replica labels, fixed-bucket
histograms merged bucket-wise — and derives ``cluster.slo.*`` gauges
(p50/p95/p99 request latency, rolling error rate) from the merged
histograms. The router serves the result in both formats, so one scrape
of the front door sees the whole fleet.

Scrapes are synchronous but cached (``cache_seconds``), so a dashboard
polling ``/metrics`` every second costs one fleet sweep per second, not
one per poll. A replica that fails to answer is skipped and reported in
the aggregation document's ``scrape_failures`` — aggregation degrades,
it never throws because one replica is mid-restart.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry, histogram_quantile


def derive_slo_gauges(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Derive ``cluster.slo.*`` gauge values from a merged snapshot.

    Latency quantiles come from the merged ``router.request.seconds``
    histogram when the router observed traffic, else from the merged
    replica-side ``serving.request.seconds``; the error rate divides
    failed by accepted requests at the same layer. Returns only the
    gauges that are derivable — an idle fleet yields ``{}``.
    """
    slo: Dict[str, float] = {}
    histograms = snapshot.get("histograms") or {}
    hist = histograms.get("router.request.seconds")
    if not hist or not hist.get("count"):
        hist = histograms.get("serving.request.seconds")
    if hist and hist.get("count"):
        slo["cluster.slo.p50.seconds"] = histogram_quantile(hist, 0.50)
        slo["cluster.slo.p95.seconds"] = histogram_quantile(hist, 0.95)
        slo["cluster.slo.p99.seconds"] = histogram_quantile(hist, 0.99)
    counters = snapshot.get("counters") or {}
    total = counters.get("router.requests.total", 0)
    failed = counters.get("router.requests.failed", 0)
    if not total:
        total = counters.get("serving.requests.total", 0)
        failed = counters.get("serving.requests.failed", 0)
    if total:
        slo["cluster.slo.error.rate"] = failed / total
    return slo


def _publish_slo(slo: Dict[str, float], scraped: int) -> None:
    """Mirror derived SLO gauges into the ambient registry.

    The aggregation document carries the values regardless; these
    gated set_gauge calls additionally make them visible to whatever
    session-level metrics dump the router process writes.
    """
    metrics.set_gauge("cluster.scrape.replicas", scraped)
    value = slo.get("cluster.slo.p50.seconds")
    if value is not None:
        metrics.set_gauge("cluster.slo.p50.seconds", value)
    value = slo.get("cluster.slo.p95.seconds")
    if value is not None:
        metrics.set_gauge("cluster.slo.p95.seconds", value)
    value = slo.get("cluster.slo.p99.seconds")
    if value is not None:
        metrics.set_gauge("cluster.slo.p99.seconds", value)
    value = slo.get("cluster.slo.error.rate")
    if value is not None:
        metrics.set_gauge("cluster.slo.error.rate", value)


class FleetMetricsAggregator:
    """Scrape-and-merge view over a set of replica endpoints.

    ``replicas`` is the same zero-argument endpoint supplier the router
    uses, so the aggregator always sweeps the supervisor's live
    topology. The router process's own ambient registry is merged in
    unlabelled (it is the "cluster" layer — ``router.*`` families),
    while each replica snapshot merges with ``source=replica_id`` so
    gauges stay distinguishable per replica.
    """

    def __init__(
        self,
        replicas: Callable[[], List[Any]],
        *,
        local_registry: Optional[MetricsRegistry] = None,
        scrape_timeout: float = 2.0,
        cache_seconds: float = 1.0,
    ) -> None:
        self.replicas = replicas
        self.scrape_timeout = scrape_timeout
        self.cache_seconds = cache_seconds
        self._local = local_registry if local_registry is not None else metrics
        self._lock = threading.Lock()
        self._last_scrape: Dict[str, float] = {}
        self._cached: Optional[Dict[str, Any]] = None
        self._cached_at = 0.0

    def scrape(self, endpoint: Any) -> Optional[Dict[str, Any]]:
        """One replica's ``/metrics.json`` snapshot, or ``None``."""
        conn = http.client.HTTPConnection(
            endpoint.host, endpoint.port, timeout=self.scrape_timeout
        )
        try:
            conn.request("GET", "/metrics.json")
            response = conn.getresponse()
            if response.status != 200:
                return None
            document = json.loads(response.read().decode("utf-8"))
        except (OSError, http.client.HTTPException, ValueError):
            return None
        finally:
            conn.close()
        return document if isinstance(document, dict) else None

    def scrape_age(self, replica_id: str) -> Optional[float]:
        """Seconds since ``replica_id`` last answered a scrape."""
        with self._lock:
            stamp = self._last_scrape.get(replica_id)
        return None if stamp is None else time.monotonic() - stamp

    def aggregate(self, force: bool = False) -> Dict[str, Any]:
        """Sweep the fleet and return the aggregation document.

        ``{"snapshot": merged, "slo": derived, "replicas": {id:
        snapshot}, "scrape_failures": [ids], "scraped_at": wall}``.
        Served from cache when the last sweep is fresher than
        ``cache_seconds`` (``force=True`` bypasses).
        """
        with self._lock:
            fresh = (
                self._cached is not None
                and time.monotonic() - self._cached_at < self.cache_seconds
            )
            if fresh and not force:
                return self._cached
        merged = MetricsRegistry()
        merged.merge_snapshot(self._local.snapshot())
        per_replica: Dict[str, Dict[str, Any]] = {}
        failures: List[str] = []
        for endpoint in self.replicas():
            snapshot = self.scrape(endpoint)
            if snapshot is None:
                failures.append(endpoint.replica_id)
                continue
            merged.merge_snapshot(snapshot, source=endpoint.replica_id)
            per_replica[endpoint.replica_id] = snapshot
            with self._lock:
                self._last_scrape[endpoint.replica_id] = time.monotonic()
        snapshot = merged.snapshot()
        slo = derive_slo_gauges(snapshot)
        snapshot["gauges"].update(slo)
        _publish_slo(slo, scraped=len(per_replica))
        document = {
            "snapshot": snapshot,
            "slo": slo,
            "replicas": per_replica,
            "scrape_failures": failures,
            "scraped_at": time.time(),
        }
        with self._lock:
            self._cached = document
            self._cached_at = time.monotonic()
        return document
