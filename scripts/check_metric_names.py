#!/usr/bin/env python
"""Lint: every metric name emitted under ``src/`` must be catalogued.

Greps the source tree for ``metrics.inc(``/``set_gauge(``/``observe(``
call sites with a *literal* first argument and fails when any emitted
name is missing from :data:`repro.obs.metrics.CATALOG` — the catalogue
backs the ``HELP`` text of the Prometheus export and the metric table in
``docs/observability.md`` (the docs-consistency test runs this check and
additionally requires every catalogued name to appear in the docs), so
an uncatalogued call site is a doc-drift bug by construction.

Also reports the reverse direction — catalogued names with no call site
— as *stale* entries; those fail the lint too, so deleting a metric
means deleting its catalogue row and doc row in the same change.

Usage::

    python scripts/check_metric_names.py          # lint, exit 1 on drift
    python scripts/check_metric_names.py --list   # dump call sites

Importable pieces (used by ``tests/test_docs_consistency.py``):
:func:`find_metric_call_sites` and :func:`check_catalog`.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, List, NamedTuple, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")

#: Matches ``metrics.inc("name"``, ``metrics.set_gauge('name'`` and
#: ``metrics.observe("name"`` — literal names only; dynamic names are
#: deliberately not allowed for registry metrics.
CALL_SITE = re.compile(
    r"metrics\.(?P<method>inc|set_gauge|observe)\(\s*"
    r"(?P<quote>['\"])(?P<name>[^'\"]+)(?P=quote)"
)


class CallSite(NamedTuple):
    path: str
    line: int
    method: str
    name: str


def find_metric_call_sites(root: str = SRC_ROOT) -> List[CallSite]:
    """All literal-name registry call sites under ``root``.

    Multi-line calls are handled by scanning whole-file text; the
    reported line number is where the ``metrics.<method>(`` opens.
    """
    sites: List[CallSite] = []
    for dirpath, _dirnames, filenames in sorted(os.walk(root)):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            for match in CALL_SITE.finditer(text):
                sites.append(
                    CallSite(
                        path=os.path.relpath(path, REPO_ROOT),
                        line=text.count("\n", 0, match.start()) + 1,
                        method=match.group("method"),
                        name=match.group("name"),
                    )
                )
    return sites


def check_catalog(
    catalog: Dict[str, str], sites: List[CallSite]
) -> Tuple[List[CallSite], List[str]]:
    """Returns ``(uncatalogued call sites, stale catalogue names)``."""
    emitted = {site.name for site in sites}
    missing = [site for site in sites if site.name not in catalog]
    stale = sorted(name for name in catalog if name not in emitted)
    return missing, stale


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--list", action="store_true", help="dump every call site found"
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, SRC_ROOT)
    from repro.obs.metrics import CATALOG

    sites = find_metric_call_sites()
    if args.list:
        for site in sites:
            print(f"{site.path}:{site.line}: {site.method}({site.name!r})")
    missing, stale = check_catalog(CATALOG, sites)
    for site in missing:
        print(
            f"{site.path}:{site.line}: metric {site.name!r} "
            f"({site.method}) is not in repro.obs.metrics.CATALOG",
            file=sys.stderr,
        )
    for name in stale:
        print(
            f"CATALOG entry {name!r} has no call site under src/ "
            "(stale — remove it and its docs/observability.md row)",
            file=sys.stderr,
        )
    if missing or stale:
        return 1
    print(
        f"ok: {len(sites)} call sites, {len(CATALOG)} catalogued names, "
        "no drift"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
