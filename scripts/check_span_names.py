#!/usr/bin/env python
"""Lint: span names and lifecycle event types must be catalogued.

Two closed vocabularies back the fleet observability plane:

- ``repro.obs.tracer.SPAN_CATALOG`` — every ``trace.span("name", ...)``
  call site under ``src/`` with a *literal* name must use a catalogued
  name, and every catalogued name must have a call site (no stale
  rows). The catalogue backs the span table in
  ``docs/observability.md``.
- ``repro.obs.events.EVENT_TYPES`` — every literal ``journal.emit(`` /
  ``self._emit(`` event type must be a known lifecycle event, and every
  known event must have an emit site. :class:`~repro.obs.events.
  EventJournal` enforces the same vocabulary at runtime; this lint
  catches the drift at review time, before a cluster run has to crash
  on it.

Usage::

    python scripts/check_span_names.py          # lint, exit 1 on drift
    python scripts/check_span_names.py --list   # dump call sites

Importable pieces (used by ``tests/test_docs_consistency.py``):
:func:`find_span_call_sites`, :func:`find_event_emit_sites` and
:func:`check_names`.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Iterable, List, NamedTuple, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")

#: Matches ``trace.span("name"`` / ``trace.span('name'`` — literal span
#: names only; the tracer accepts dynamic names but the serving and
#: solver layers deliberately stick to the closed catalogue.
SPAN_SITE = re.compile(
    r"trace\.span\(\s*(?P<quote>['\"])(?P<name>[^'\"]+)(?P=quote)"
)

#: Matches literal event emissions: ``journal.emit("type"`` (any
#: receiver ending in ``.emit``) and the supervisor's ``self._emit(``
#: helper. :class:`EventJournal` raises on unknown types at runtime;
#: the lint keeps the same check shift-left.
EVENT_SITE = re.compile(
    r"(?:\.emit|_emit)\(\s*(?P<quote>['\"])(?P<name>[^'\"]+)(?P=quote)"
)


class CallSite(NamedTuple):
    path: str
    line: int
    name: str


def _scan(pattern: re.Pattern, root: str) -> List[CallSite]:
    sites: List[CallSite] = []
    for dirpath, _dirnames, filenames in sorted(os.walk(root)):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            for match in pattern.finditer(text):
                sites.append(
                    CallSite(
                        path=os.path.relpath(path, REPO_ROOT),
                        line=text.count("\n", 0, match.start()) + 1,
                        name=match.group("name"),
                    )
                )
    return sites


def find_span_call_sites(root: str = SRC_ROOT) -> List[CallSite]:
    """All literal-name ``trace.span(`` call sites under ``root``."""
    return _scan(SPAN_SITE, root)


def find_event_emit_sites(root: str = SRC_ROOT) -> List[CallSite]:
    """All literal-type event emit sites under ``root``."""
    return _scan(EVENT_SITE, root)


def check_names(
    known: Iterable[str], sites: List[CallSite]
) -> Tuple[List[CallSite], List[str]]:
    """Returns ``(unknown call sites, stale catalogued names)``."""
    known = set(known)
    emitted = {site.name for site in sites}
    unknown = [site for site in sites if site.name not in known]
    stale = sorted(name for name in known if name not in emitted)
    return unknown, stale


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--list", action="store_true", help="dump every call site found"
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, SRC_ROOT)
    from repro.obs.events import EVENT_TYPES
    from repro.obs.tracer import SPAN_CATALOG

    failed = False
    for label, catalog, sites in (
        ("span", SPAN_CATALOG, find_span_call_sites()),
        ("event", EVENT_TYPES, find_event_emit_sites()),
    ):
        if args.list:
            for site in sites:
                print(f"{site.path}:{site.line}: {label} {site.name!r}")
        unknown, stale = check_names(catalog, sites)
        for site in unknown:
            print(
                f"{site.path}:{site.line}: {label} name {site.name!r} is "
                f"not catalogued (repro.obs."
                f"{'tracer.SPAN_CATALOG' if label == 'span' else 'events.EVENT_TYPES'})",
                file=sys.stderr,
            )
        for name in stale:
            print(
                f"{label} catalogue entry {name!r} has no call site under "
                "src/ (stale — remove it and its docs/observability.md "
                "row)",
                file=sys.stderr,
            )
        if unknown or stale:
            failed = True
        else:
            print(
                f"ok: {len(sites)} {label} sites, "
                f"{len(catalog)} catalogued, no drift"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
