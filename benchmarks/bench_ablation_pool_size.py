"""Ablation — RIC pool size vs estimation error.

``ĉ_R(S) -> c(S)`` as ``|R|`` grows (Lemma 1 + concentration). This
ablation sweeps the pool size and reports the relative error of the
pool estimate against a high-trial Monte-Carlo reference, verifying the
error shrinks — the empirical face of the Ψ/Λ sample bounds.
"""

from conftest import emit

from repro.diffusion.simulator import community_benefit_monte_carlo
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_series
from repro.experiments.runner import build_instance
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler

POOL_SIZES = (50, 200, 800, 3200)


def test_ablation_pool_size_error(benchmark):
    config = ExperimentConfig(dataset="facebook", scale=0.15, seed=13)
    graph, communities = build_instance(config)
    seeds = list(communities[0].members[:2]) + list(communities[1].members[:2])
    reference = community_benefit_monte_carlo(
        graph, communities, seeds, num_trials=20_000, seed=19
    )

    def sweep():
        errors = []
        for trial in range(3):
            sampler = RICSampler(graph, communities, seed=100 + trial)
            pool = RICSamplePool(sampler)
            trial_errors = []
            for size in POOL_SIZES:
                pool.grow_to(size)
                estimate = pool.estimate_benefit(seeds)
                trial_errors.append(abs(estimate - reference) / reference)
            errors.append(trial_errors)
        # Mean error per pool size across trials.
        return [
            sum(e[i] for e in errors) / len(errors)
            for i in range(len(POOL_SIZES))
        ]

    mean_errors = benchmark.pedantic(sweep, rounds=1)
    emit(
        "Ablation: RIC pool size vs relative estimation error "
        f"(reference c(S)={reference:.2f})",
        format_series(
            "|R|", list(POOL_SIZES), {"mean relative error": mean_errors}
        ),
    )
    # Error at the largest pool is small and far below the smallest pool.
    assert mean_errors[-1] < 0.10
    assert mean_errors[-1] <= mean_errors[0] + 0.02
