"""Ablation — paired UBG-vs-IM comparison on common random worlds.

Fig. 5/6 compare algorithms through independent Monte-Carlo estimates;
this bench re-runs the headline comparison with common random numbers
(identical sampled worlds for both seed sets), eliminating world-level
noise from the difference. Expectation: UBG's advantage over classic IM
on the community objective is confirmed world-by-world, not just in the
means.
"""

from conftest import emit

from repro.baselines.im_baseline import im_seeds
from repro.core.ubg import UBG
from repro.diffusion.common_worlds import CommonWorldEvaluator
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ascii_table
from repro.experiments.runner import build_instance, make_pool

K = 15
WORLDS = 400


def test_paired_ubg_vs_im(benchmark):
    config = ExperimentConfig(
        dataset="wikivote", scale=0.2, pool_size=800, seed=7
    )
    graph, communities = build_instance(config)
    pool = make_pool(graph, communities, config)
    ubg_seeds = UBG().solve(pool, K).seeds
    im = im_seeds(graph, K, seed=8, max_samples=20_000)

    def run():
        evaluator = CommonWorldEvaluator(
            graph, communities, num_worlds=WORLDS, seed=9
        )
        comparison = evaluator.compare(ubg_seeds, im)
        spread_ubg = evaluator.spread(ubg_seeds)
        spread_im = evaluator.spread(im)
        return comparison, spread_ubg, spread_im

    comparison, spread_ubg, spread_im = benchmark.pedantic(run, rounds=1)
    emit(
        f"Paired comparison on {WORLDS} common worlds (wikivote-like, k={K})",
        ascii_table(
            ["metric", "UBG", "IM"],
            [
                ("community benefit c(S)", comparison["mean_a"], comparison["mean_b"]),
                ("influence spread sigma(S)", spread_ubg, spread_im),
                (
                    "worlds won",
                    comparison["wins_a"],
                    comparison["wins_b"],
                ),
            ],
        )
        + f"\nmean paired benefit difference: {comparison['mean_diff']:+.3f}",
    )
    # The paper's story, noise-free: UBG wins the community objective...
    assert comparison["mean_diff"] > 0
    assert comparison["wins_a"] > comparison["wins_b"]
    # ...even though classic IM is competitive (or better) on raw spread.
    assert spread_im >= spread_ubg * 0.7
