"""Fig. 6 — benefit vs k, bounded activation thresholds (h = 2).

Includes MB, the tight-guarantee compound solver the paper only runs in
this setting. Shape expectations: same ordering as Fig. 5 (our methods
on top, KS at the bottom), with MB competitive with UBG/MAF.
"""

from conftest import emit

from repro.experiments.figures import fig6_benefit_bounded
from repro.experiments.reporting import format_series

ALGORITHMS = ("UBG", "MAF", "MB", "HBC", "KS", "IM")
K_VALUES = (5, 10, 20)


def test_fig6_facebook_like(benchmark, bench_config):
    results = benchmark.pedantic(
        fig6_benefit_bounded,
        kwargs=dict(
            dataset="facebook",
            k_values=K_VALUES,
            algorithms=ALGORITHMS,
            base_config=bench_config,
            candidate_limit=25,
        ),
        rounds=1,
    )
    series = {
        name: [run.benefit for run in results[name]] for name in ALGORITHMS
    }
    emit(
        "Fig. 6 (facebook-like analogue): benefit vs k, h=2",
        format_series("k", list(K_VALUES), series),
    )
    for i, _ in enumerate(K_VALUES):
        best_ours = max(series["UBG"][i], series["MAF"][i], series["MB"][i])
        assert best_ours >= series["KS"][i] * 0.95
    # MB is within a reasonable band of the best (it carries the tight
    # theoretical guarantee, not necessarily the best practice numbers).
    assert series["MB"][-1] >= 0.5 * max(series["UBG"][-1], series["MAF"][-1])


def test_fig6_epinions_like(benchmark, bench_config):
    config = bench_config.with_overrides(dataset="epinions", scale=0.12)
    results = benchmark.pedantic(
        fig6_benefit_bounded,
        kwargs=dict(
            dataset="epinions",
            k_values=(5, 15),
            algorithms=("UBG", "MAF", "HBC", "KS", "IM"),
            base_config=config,
        ),
        rounds=1,
    )
    series = {
        name: [run.benefit for run in results[name]]
        for name in ("UBG", "MAF", "HBC", "KS", "IM")
    }
    emit(
        "Fig. 6 (epinions-like analogue, MB dropped as in the paper's "
        "large nets): benefit vs k, h=2",
        format_series("k", [5, 15], series),
    )
    assert max(series["UBG"][-1], series["MAF"][-1]) >= series["KS"][-1] * 0.95
