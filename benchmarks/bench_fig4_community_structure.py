"""Fig. 4 — solution quality vs community formation and size cap ``s``.

The paper's panels: Louvain vs Random formation on Facebook/DBLP-like
networks at k=10, sweeping the community size cap s, in both the
regular (h = 0.5|C|) and bounded (h = 2) threshold settings.

Shape expectations from the paper:
- our algorithms (UBG/MAF) dominate the heuristics for every formation;
- in the regular case quality decreases as s grows (larger communities
  mean higher absolute thresholds);
- in the bounded case the trend flips/flattens (h stays 2 regardless).
"""

from conftest import emit

from repro.experiments.figures import fig4_community_structure
from repro.experiments.reporting import ascii_table

ALGORITHMS = ("UBG", "MAF", "HBC", "KS", "IM")
SIZE_CAPS = (4, 8, 16)


def _render(results):
    rows = [
        [f"{formation}/s={s}"] + [results[(formation, s)][a] for a in ALGORITHMS]
        for (formation, s) in sorted(results)
    ]
    return ascii_table(["instance"] + list(ALGORITHMS), rows)


def test_fig4_regular_threshold(benchmark, bench_config):
    results = benchmark.pedantic(
        fig4_community_structure,
        kwargs=dict(
            dataset="facebook",
            formations=("louvain", "random"),
            size_caps=SIZE_CAPS,
            k=10,
            threshold="fractional",
            algorithms=ALGORITHMS,
            base_config=bench_config,
        ),
        rounds=1,
    )
    emit("Fig. 4 (a/b analogue): facebook-like, h=0.5|C|, k=10", _render(results))
    for formation in ("louvain", "random"):
        # Our methods at least match the worst heuristic everywhere and
        # beat KS (the paper's weakest baseline) on average.
        ours = [
            max(results[(formation, s)]["UBG"], results[(formation, s)]["MAF"])
            for s in SIZE_CAPS
        ]
        ks = [results[(formation, s)]["KS"] for s in SIZE_CAPS]
        assert sum(ours) >= sum(ks)
        # Regular case: quality at the smallest cap >= at the largest
        # (the paper's decreasing-in-s observation).
        assert ours[0] >= ours[-1] * 0.8


def test_fig4_bounded_threshold(benchmark, bench_config):
    results = benchmark.pedantic(
        fig4_community_structure,
        kwargs=dict(
            dataset="facebook",
            formations=("louvain",),
            size_caps=SIZE_CAPS,
            k=10,
            threshold="bounded",
            algorithms=ALGORITHMS,
            base_config=bench_config,
        ),
        rounds=1,
    )
    emit("Fig. 4 (c analogue): facebook-like, h=2, k=10", _render(results))
    ours = [
        max(results[("louvain", s)]["UBG"], results[("louvain", s)]["MAF"])
        for s in SIZE_CAPS
    ]
    ks = [results[("louvain", s)]["KS"] for s in SIZE_CAPS]
    assert sum(ours) >= sum(ks)
    # Bounded case: the decreasing-in-s effect weakens/reverses
    # ("...which contradicts the experiment on bounded activation
    # threshold"). Allow flat-to-increasing, with slack.
    assert ours[-1] >= ours[0] * 0.6


def test_fig4_dblp_like(benchmark, bench_config):
    config = bench_config.with_overrides(dataset="dblp", scale=0.12)
    results = benchmark.pedantic(
        fig4_community_structure,
        kwargs=dict(
            dataset="dblp",
            formations=("louvain",),
            size_caps=(4, 8),
            k=10,
            threshold="fractional",
            algorithms=ALGORITHMS,
            base_config=config,
        ),
        rounds=1,
    )
    emit("Fig. 4 (d analogue): dblp-like, h=0.5|C|, k=10", _render(results))
    for s in (4, 8):
        best_ours = max(
            results[("louvain", s)]["UBG"], results[("louvain", s)]["MAF"]
        )
        assert best_ours >= results[("louvain", s)]["KS"]
