"""Table I — dataset statistics.

Regenerates the paper's dataset table for the synthetic stand-ins and
benchmarks dataset construction (generator + weighted-cascade).
"""

from conftest import SCALE, emit

from repro.datasets.registry import dataset_statistics, load_dataset
from repro.experiments.reporting import ascii_table

_SCALE = 0.2 * SCALE


def test_table1_statistics(benchmark):
    rows = benchmark.pedantic(
        dataset_statistics, kwargs={"scale": _SCALE, "seed": 7}, rounds=1
    )
    emit(
        "Table I: Statistics of datasets (stand-ins at scale "
        f"{_SCALE:g})",
        ascii_table(
            ["Data", "Type", "Paper nodes", "Paper edges", "Nodes", "Edges"],
            [
                (
                    r["name"],
                    r["type"],
                    r["paper_nodes"],
                    r["paper_edges"],
                    r["nodes"],
                    r["edges"],
                )
                for r in rows
            ],
        ),
    )
    # Shape: all five datasets, directedness matches the paper, and the
    # node-count ordering of Table I is preserved by the stand-ins.
    assert [r["name"] for r in rows] == [
        "facebook",
        "wikivote",
        "epinions",
        "dblp",
        "pokec",
    ]
    assert [r["type"] for r in rows] == [
        "Undirected",
        "Directed",
        "Directed",
        "Undirected",
        "Directed",
    ]
    nodes = [r["nodes"] for r in rows]
    assert nodes[0] < nodes[1] < nodes[2] <= nodes[3] < nodes[4]


def test_largest_dataset_load(benchmark):
    dataset = benchmark.pedantic(
        load_dataset,
        kwargs={"name": "pokec", "scale": _SCALE, "seed": 7},
        rounds=1,
    )
    assert dataset.num_edges > dataset.num_nodes * 5
