"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper at
laptop scale and prints the corresponding rows/series. Scales are kept
small enough for the whole directory to run in a few minutes; raise
``REPRO_BENCH_SCALE`` (a float multiplier) for closer-to-paper sizes.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig

#: Global scale multiplier, settable from the environment.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Base config all figure benchmarks derive from."""
    return ExperimentConfig(
        dataset="facebook",
        scale=0.15 * SCALE,
        pool_size=max(200, int(600 * SCALE)),
        eval_trials=max(60, int(150 * SCALE)),
        seed=7,
    )


def emit(title: str, body: str) -> None:
    """Print a figure/table block (visible with pytest -s; always kept
    in the captured output otherwise)."""
    print(f"\n===== {title} =====")
    print(body)
