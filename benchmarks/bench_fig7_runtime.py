"""Fig. 7 — runtime comparison on larger networks.

Shape expectations from the paper: MAF runs far faster than UBG and is
roughly flat in k; UBG's cost grows with k; MB is slower than both by a
large margin (the paper drops it on Pokec entirely).
"""

from conftest import emit

from repro.experiments.figures import fig7_runtime
from repro.experiments.reporting import format_series

K_VALUES = (5, 10, 20)


def test_fig7_runtime_bounded(benchmark, bench_config):
    config = bench_config.with_overrides(dataset="epinions", scale=0.2)
    results = benchmark.pedantic(
        fig7_runtime,
        kwargs=dict(
            dataset="epinions",
            k_values=K_VALUES,
            algorithms=("UBG", "MAF", "MB"),
            threshold="bounded",
            base_config=config,
            candidate_limit=None,  # faithful BT: full outer loop over u
        ),
        rounds=1,
    )
    series = {
        name: [run.runtime_seconds for run in results[name]]
        for name in ("UBG", "MAF", "MB")
    }
    emit(
        "Fig. 7 (a analogue): runtime (s) vs k, epinions-like, h=2",
        format_series("k", list(K_VALUES), series),
    )
    # MAF fastest, MB slowest — the paper's headline runtime ordering.
    assert sum(series["MAF"]) <= sum(series["UBG"])
    assert sum(series["MB"]) >= sum(series["MAF"])
    # MAF roughly flat in k: largest-k run within 5x of smallest-k run.
    assert series["MAF"][-1] <= max(series["MAF"][0] * 5.0, 0.05)


def test_fig7_runtime_regular_large_net(benchmark, bench_config):
    config = bench_config.with_overrides(dataset="pokec", scale=0.15)
    results = benchmark.pedantic(
        fig7_runtime,
        kwargs=dict(
            dataset="pokec",
            k_values=(5, 20),
            algorithms=("UBG", "MAF"),
            threshold="fractional",
            base_config=config,
        ),
        rounds=1,
    )
    series = {
        name: [run.runtime_seconds for run in results[name]]
        for name in ("UBG", "MAF")
    }
    emit(
        "Fig. 7 (b analogue): runtime (s) vs k, pokec-like, h=0.5|C| "
        "(MB omitted — exceeded the paper's limit on Pokec too)",
        format_series("k", [5, 20], series),
    )
    assert sum(series["MAF"]) <= sum(series["UBG"]) * 1.2
