"""Ablation — MAF's two arms in isolation.

Theorem 3 proves a guarantee for S1 (community frequency) only, and
shows S2 (node frequency) can be arbitrarily bad in theory while noting
it "actually performs well in experiments". This ablation measures both
arms and the combined solver on a realistic instance.
"""

from conftest import emit

from repro.core.maf import MAF
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ascii_table
from repro.experiments.runner import build_instance, make_pool

K = 15


def test_ablation_maf_arms(benchmark):
    config = ExperimentConfig(
        dataset="facebook", scale=0.2, pool_size=800, seed=11
    )
    graph, communities = build_instance(config)
    pool = make_pool(graph, communities, config)
    solver = MAF(seed=3)

    def run():
        s1 = solver._build_s1(pool, K)
        s2 = solver._build_s2(pool, K)
        combined = solver.solve(pool, K)
        return (
            pool.estimate_benefit(s1),
            pool.estimate_benefit(s2),
            combined.objective,
            combined.metadata["arm"],
        )

    v1, v2, v_comb, arm = benchmark.pedantic(run, rounds=1)
    emit(
        "Ablation: MAF arms (k=15, facebook-like, h=0.5|C|)",
        ascii_table(
            ["arm", "pool objective c_R"],
            [
                ["S1 (community frequency, Thm-3 guarantee)", v1],
                ["S2 (node frequency, no guarantee)", v2],
                ["MAF (best of both)", v_comb],
                ["winner", arm],
            ],
        ),
    )
    # The combined solver never loses to either arm.
    assert v_comb >= max(v1, v2) - 1e-9
    # Both arms produce something useful on a benign instance.
    assert v1 > 0 and v2 > 0
