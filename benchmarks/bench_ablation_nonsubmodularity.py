"""Ablation — measured non-submodularity vs threshold regime.

Quantifies the structural claim behind Fig. 8: with unit thresholds
``ĉ_R`` is submodular (Lemma 4); as thresholds grow, diminishing-
returns violations appear and the empirical γ drops — exactly why the
UBG sandwich ratio degrades in the regular-threshold case.
"""

from conftest import emit

from repro.communities.thresholds import (
    build_structure,
    constant_thresholds,
    fractional_thresholds,
)
from repro.core.curvature import probe_nonsubmodularity
from repro.experiments.reporting import ascii_table
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler

REGIMES = (
    ("h=1 (submodular, Lemma 4)", constant_thresholds(1)),
    ("h=2 (bounded)", constant_thresholds(2)),
    ("h=0.5|C| (regular)", fractional_thresholds(0.5)),
)


def test_ablation_nonsubmodularity(benchmark):
    graph, blocks = planted_partition_graph(
        [8] * 5, p_in=0.5, p_out=0.03, directed=True, seed=7
    )
    assign_weighted_cascade(graph)

    def run():
        rows = []
        for label, policy in REGIMES:
            communities = build_structure(
                blocks, size_cap=8, threshold_policy=policy
            )
            pool = RICSamplePool(RICSampler(graph, communities, seed=8))
            pool.grow(300)
            profile = probe_nonsubmodularity(pool, trials=400, seed=9)
            rows.append(
                (
                    label,
                    profile.submodularity_violation_rate,
                    profile.gamma_lower_bound,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    emit(
        "Ablation: measured non-submodularity of c_R by threshold regime",
        ascii_table(["threshold regime", "violation rate", "gamma LB"], rows),
    )
    by_label = {label: (rate, gamma) for label, rate, gamma in rows}
    # Lemma 4: unit thresholds show zero violations and gamma = 1.
    assert by_label["h=1 (submodular, Lemma 4)"][0] == 0.0
    assert by_label["h=1 (submodular, Lemma 4)"][1] == 1.0
    # Larger thresholds violate at least as much as unit thresholds.
    assert by_label["h=0.5|C| (regular)"][0] >= 0.0
    assert (
        by_label["h=2 (bounded)"][0]
        <= by_label["h=0.5|C| (regular)"][0] + 0.05
    )
