"""Stand-in fidelity report — the measured face of DESIGN.md §3.

Prints structural metrics per dataset stand-in and asserts each matches
the qualitative profile of the SNAP network it replaces.
"""

from conftest import emit

from repro.experiments.fidelity import fidelity_expectations, fidelity_report
from repro.experiments.reporting import ascii_table


def test_fidelity_report(benchmark):
    rows = benchmark.pedantic(
        fidelity_report, kwargs={"scale": 0.2, "seed": 7}, rounds=1
    )
    emit(
        "Stand-in fidelity (scale 0.2): measured vs paper profile",
        ascii_table(
            [
                "dataset",
                "type",
                "avg deg",
                "paper avg deg",
                "max/mean deg",
                "clustering",
                "reciprocity",
                "eff. diameter",
            ],
            [
                (
                    r.name,
                    "dir" if r.directed else "undir",
                    r.avg_degree,
                    r.paper_avg_degree,
                    r.max_degree_ratio,
                    r.clustering,
                    r.reciprocity,
                    r.effective_diameter,
                )
                for r in rows
            ],
        ),
    )
    assert len(rows) == 5
    failures = {}
    for row in rows:
        checks = fidelity_expectations(row)
        failed = [name for name, ok in checks.items() if not ok]
        if failed:
            failures[row.name] = failed
    assert not failures, f"fidelity drift: {failures}"
