"""Extension — the full IMC pipeline under the Linear Threshold model.

The paper states its solution "can be easily extended to the Linear
Threshold model" (Section II-A); this bench runs the Fig. 5-style
comparison with LT-mode RIC sampling and LT evaluation. Expectation:
the same algorithm ordering as under IC (our solvers ≥ heuristics,
KS worst), demonstrating the extension end to end.
"""

from conftest import emit

from repro.baselines.knapsack import ks_seeds
from repro.core.maf import MAF
from repro.core.ubg import UBG
from repro.diffusion.simulator import BenefitEvaluator
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_series
from repro.experiments.runner import build_instance
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler

K_VALUES = (5, 10, 20)


def test_lt_pipeline_benefit_vs_k(benchmark):
    config = ExperimentConfig(
        dataset="facebook", scale=0.15, eval_trials=150, seed=7
    )
    graph, communities = build_instance(config)

    def run():
        pool = RICSamplePool(
            RICSampler(graph, communities, seed=8, model="lt")
        )
        pool.grow(600)
        evaluator = BenefitEvaluator(
            graph, communities, num_trials=150, model="lt", seed=9
        )
        series = {"UBG": [], "MAF": [], "KS": []}
        for k in K_VALUES:
            series["UBG"].append(evaluator(UBG().solve(pool, k).seeds))
            series["MAF"].append(
                evaluator(MAF(seed=10).solve(pool, k).seeds)
            )
            series["KS"].append(evaluator(ks_seeds(communities, k)))
        return series

    series = benchmark.pedantic(run, rounds=1)
    emit(
        "LT extension: benefit vs k under the Linear Threshold model "
        "(facebook-like, h=0.5|C|)",
        format_series("k", list(K_VALUES), series),
    )
    # Same ordering story as the IC figures.
    for i, _ in enumerate(K_VALUES):
        assert max(series["UBG"][i], series["MAF"][i]) >= series["KS"][i] * 0.95
    # Benefit grows with k for the RIC-based solvers.
    assert series["UBG"][-1] >= series["UBG"][0] * 0.9
