"""Ablation — community formation method (extends Fig. 4).

The paper compares Louvain vs Random; this ablation adds the
label-propagation and CNM greedy-modularity detectors. Expectation:
all structure-aware detectors land in the same quality band, random
partitioning underperforms in the regular-threshold case on modular
graphs (random communities scatter thresholds across the network).
"""

from conftest import emit

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ascii_table
from repro.experiments.sweeps import formation_comparison

FORMATIONS = ("louvain", "label-propagation", "greedy-modularity", "random")


def test_ablation_formation_methods(benchmark):
    config = ExperimentConfig(
        dataset="dblp",  # the most community-structured stand-in
        scale=0.12,
        pool_size=400,
        eval_trials=120,
        seed=7,
    )
    results = benchmark.pedantic(
        formation_comparison,
        kwargs=dict(
            config=config, formations=FORMATIONS, k=10, algorithm="UBG"
        ),
        rounds=1,
    )
    emit(
        "Ablation: community formation (dblp-like, UBG, k=10, h=0.5|C|)",
        ascii_table(
            ["formation", "benefit"],
            [(name, results[name]) for name in FORMATIONS],
        ),
    )
    assert set(results) == set(FORMATIONS)
    assert all(v >= 0 for v in results.values())
    # Structure-aware detectors within a band of each other.
    structured = [
        results["louvain"],
        results["label-propagation"],
        results["greedy-modularity"],
    ]
    assert max(structured) <= min(structured) * 2.5 + 1e-9
