"""IMCAF convergence diagnostics via the progress hook.

Traces pool size, coverage count and objective across the stop-and-
stare stages of Algorithm 5 — how the doubling loop approaches its
stopping condition. Expectation: the pool doubles per stage, coverage
grows with it, and the objective estimate stabilises well before the
final stage (the statistical machinery's whole point).
"""

from conftest import emit

from repro.core.framework import solve_imc
from repro.core.ubg import UBG
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ascii_table
from repro.experiments.runner import build_instance

K = 8
CAP = 16_000


def test_imcaf_convergence_trace(benchmark):
    config = ExperimentConfig(
        dataset="facebook", scale=0.12, seed=7, threshold="bounded"
    )
    graph, communities = build_instance(config)

    def run():
        events = []
        result = solve_imc(
            graph,
            communities,
            k=K,
            solver=UBG(),
            seed=9,
            max_samples=CAP,
            progress=events.append,
        )
        return events, result

    events, result = benchmark.pedantic(run, rounds=1)
    emit(
        f"IMCAF convergence (UBG, k={K}, stop={result.stopped_by})",
        ascii_table(
            ["stage", "|R|", "coverage", "Lambda", "c_R(S)"],
            [
                (
                    e["stage"],
                    e["num_samples"],
                    e["coverage"],
                    e["lambda"],
                    e["objective"],
                )
                for e in events
            ],
        ),
    )
    assert events
    sizes = [e["num_samples"] for e in events]
    assert sizes == sorted(sizes)
    # Pool at least doubles between consecutive stages (up to the cap).
    for previous, current in zip(sizes, sizes[1:]):
        assert current >= min(2 * previous, CAP) * 0.99
    # Objective stabilises: last two stages within 15% of each other.
    if len(events) >= 2:
        a, b = events[-2]["objective"], events[-1]["objective"]
        assert abs(a - b) <= 0.15 * max(a, b)
