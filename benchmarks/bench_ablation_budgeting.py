"""Ablation — sample budgeting: IMCAF (SSA-style) vs one-shot (IMM-style).

Both frameworks wrap the same MAXR solver; they differ in how many RIC
samples they decide to pay for. Expectation: comparable solution
quality; the one-shot variant's data-driven lower bound usually buys a
smaller (or at worst equal, under the same practical cap) sample count
than IMCAF's doubling reaches.
"""

from conftest import emit

from repro.core.framework import solve_imc
from repro.core.static_bound import solve_imc_static
from repro.core.ubg import UBG
from repro.diffusion.simulator import BenefitEvaluator
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ascii_table
from repro.experiments.runner import build_instance

K = 8
CAP = 8_000


def test_ablation_budgeting_strategies(benchmark):
    config = ExperimentConfig(
        dataset="facebook", scale=0.12, eval_trials=200, seed=7,
        threshold="bounded",
    )
    graph, communities = build_instance(config)
    evaluator = BenefitEvaluator(graph, communities, num_trials=300, seed=8)

    def run():
        dynamic = solve_imc(
            graph, communities, k=K, solver=UBG(), seed=9, max_samples=CAP
        )
        static = solve_imc_static(
            graph, communities, k=K, solver=UBG(), seed=9, max_samples=CAP
        )
        return dynamic, static

    dynamic, static = benchmark.pedantic(run, rounds=1)
    benefit_dynamic = evaluator(dynamic.selection.seeds)
    benefit_static = evaluator(static.selection.seeds)
    emit(
        "Ablation: sample budgeting (UBG, k=8, h=2, facebook-like)",
        ascii_table(
            ["framework", "samples", "stop reason / LB", "c(S) (MC)"],
            [
                (
                    "IMCAF (Alg. 5, doubling)",
                    dynamic.num_samples,
                    dynamic.stopped_by,
                    benefit_dynamic,
                ),
                (
                    "one-shot (IMM-style)",
                    static.num_samples,
                    f"LB={static.lower_bound:.1f}",
                    benefit_static,
                ),
            ],
        ),
    )
    # Quality parity within Monte-Carlo noise.
    assert benefit_static >= 0.85 * benefit_dynamic
    assert benefit_dynamic >= 0.85 * benefit_static
    assert static.num_samples <= CAP and dynamic.num_samples <= CAP
