"""Chaos floor — the whole cluster stack under concurrent fire.

Three replicas behind the rendezvous router, 200+ concurrent clients
round-robining six distinct queries over three scenarios, four phases
through :mod:`repro.serving.loadgen` across two cluster incarnations:

**Cluster A (observability off)** isolates the router→replica
connection-pooling win:

1. **plain-unpooled**: keep-alive pooling disabled — every forward
   opens a fresh upstream connection.
2. **plain-pooled**: pooling re-enabled — the before/after p50/p95
   land in the manifest under ``connection_pooling``.

**Cluster B (full observability plane: ``run_dir`` set, so the event
journal, cross-process tracing and fleet scraping are all live)**:

3. **fault-free**: records the golden deterministic answer per query
   and the obs-enabled latency distribution.
4. **replica-kill**: the same flood, but once an eighth of the requests
   have completed, the replica *owning the hottest scenario* is
   SIGKILLed (whole process group — sampler workers included).

The floor asserts:

- **zero client-visible errors** in every phase — every request gets a
  200, no transport failures (the router fails requests over to the
  rendezvous successor, which cold-rebuilds the shard byte-identically);
- **all four phases byte-identical** to the fault-free golden
  (volatile ``batched``/``cache_hit`` flags aside);
- **every response traceable** with the plane enabled — both cluster-B
  phases carry an ``X-Repro-Trace-Id`` on 100% of answers, kill
  included;
- **aggregation adds up** — the router's merged
  ``serving.requests.total`` equals the sum over the per-replica
  scrapes in the same aggregation document, with zero scrape failures
  once the fleet has quiesced;
- **the reporter tells the story** — ``render_cluster_report`` on the
  run dir renders the kill → respawn incident;
- **observability is cheap** — obs-enabled fault-free p95 within 5%
  (plus a small absolute allowance) of the plain pooled p95;
- **restart within the backoff bound** — the supervisor's
  ``restart_log`` shows the victim respawned no earlier than its
  policy delay and healthy again within the schedule-plus-startup
  bound.

p50/p95/p99 for all phases land in a run manifest
(``bench_cluster.manifest.json`` under the pytest tmp dir).
"""

from __future__ import annotations

import time

from conftest import SCALE, emit

from repro import obs
from repro.communities.structure import Community, CommunityStructure
from repro.experiments.reporting import ascii_table
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.obs import render_cluster_report
from repro.serving import (
    ClusterConfig,
    LoadGenerator,
    LoadPhase,
    ScenarioSpec,
    ServingCluster,
    assign_replica,
)
from repro.utils.retry import RetryPolicy

CLIENTS = max(200, int(250 * SCALE))
POOL_SIZE = max(96, int(192 * SCALE))
REPLICAS = 3
SCENARIOS = ("alpha", "beta", "gamma")
BUDGETS = (3, 5)
RESTART_POLICY = RetryPolicy(
    max_attempts=6, base_delay=0.25, max_delay=10.0, jitter=0.25, seed=0
)
STARTUP_TIMEOUT = 120.0
# Observability overhead ceiling: 5% relative plus a 25ms absolute
# allowance so a near-zero baseline doesn't turn scheduler noise into
# a failure.
OVERHEAD_RELATIVE = 1.05
OVERHEAD_ABSOLUTE = 0.025


def _instance():
    graph, blocks = planted_partition_graph(
        [5] * 6, p_in=0.6, p_out=0.03, directed=True, seed=17
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    return graph.freeze(), communities


def _queries():
    distinct = [
        {"scenario": scenario, "budget": budget}
        for scenario in SCENARIOS
        for budget in BUDGETS
    ]
    return [distinct[i % len(distinct)] for i in range(CLIENTS)]


def _config(instance, run_dir=None) -> ClusterConfig:
    specs = {
        name: ScenarioSpec(
            name=name, dataset="facebook", seed=99, pool_size=POOL_SIZE
        )
        for name in SCENARIOS
    }
    return ClusterConfig(
        specs,
        instances={name: instance for name in SCENARIOS},
        replicas=REPLICAS,
        workers=1,
        round_size=POOL_SIZE,
        restart_policy=RESTART_POLICY,
        heartbeat_interval=0.2,
        heartbeat_timeout=1.0,
        startup_timeout=STARTUP_TIMEOUT,
        run_dir=run_dir,
    )


def _await_victim_healthy(supervisor, victim: str, bound: float) -> float:
    """Seconds until the killed replica is healthy again (<= bound)."""
    began = time.monotonic()
    deadline = began + bound
    while time.monotonic() < deadline:
        health = {
            endpoint.replica_id: endpoint.healthy
            for endpoint in supervisor.endpoints()
        }
        if health.get(victim):
            return time.monotonic() - began
        time.sleep(0.1)
    raise AssertionError(
        f"victim {victim} not healthy within {bound:.1f}s: "
        f"{supervisor.restart_log}"
    )


def test_cluster_load(benchmark, tmp_path):
    instance = _instance()
    run_dir = str(tmp_path / "cluster-run")
    queries = _queries()

    def run():
        # --- Cluster A: observability off; pooling before/after. ---
        with ServingCluster(_config(instance)) as cluster:
            host, port = cluster.router_address
            generator = LoadGenerator(host, port)
            # Warm every shard's solve cache first so neither measured
            # phase pays the one-off cold-build cost.
            generator.run_phase(LoadPhase("warmup", queries, clients=CLIENTS))
            cluster.router_app.pool_connections = False
            unpooled = generator.run_phase(
                LoadPhase("plain-unpooled", queries, clients=CLIENTS)
            )
            cluster.router_app.pool_connections = True
            pooled = generator.run_phase(
                LoadPhase("plain-pooled", queries, clients=CLIENTS)
            )

        # --- Cluster B: full observability plane + chaos. ---
        with ServingCluster(_config(instance, run_dir=run_dir)) as cluster:
            supervisor = cluster.supervisor
            host, port = cluster.router_address
            generator = LoadGenerator(host, port)
            victim = assign_replica(
                SCENARIOS[0],
                [e.replica_id for e in supervisor.endpoints()],
            )
            # Same warmup as cluster A: the measured fault-free phase
            # must not carry the cold-build cost cluster A already paid.
            generator.run_phase(LoadPhase("warmup", queries, clients=CLIENTS))
            clean = generator.run_phase(
                LoadPhase("fault-free", queries, clients=CLIENTS)
            )
            killed = generator.run_phase(
                LoadPhase(
                    "replica-kill",
                    queries,
                    clients=CLIENTS,
                    chaos=lambda: supervisor.kill_replica(victim),
                    chaos_after=CLIENTS // 8,
                )
            )
            # The phase can finish while the victim is still mid-
            # backoff; the restart bound is asserted on the log.
            schedule = sum(RESTART_POLICY.delays())
            _await_victim_healthy(
                supervisor, victim, schedule + STARTUP_TIMEOUT
            )
            restart_log = [dict(e) for e in supervisor.restart_log]
            counters = dict(cluster.router_app.counters)
            # Quiesced fleet sweep: every replica back up, nothing in
            # flight — the merged counters must add up exactly.
            fleet_doc = cluster.router_app.fleet.aggregate(force=True)
        return (
            unpooled,
            pooled,
            clean,
            killed,
            victim,
            restart_log,
            counters,
            fleet_doc,
        )

    unpooled, pooled, clean, killed, victim, restart_log, counters, fleet_doc = (
        benchmark.pedantic(run, rounds=1)
    )

    # Floor 1: zero client-visible errors, in all four phases (golden()
    # raises on any transport error or non-200).
    clean_golden = clean.golden()
    # Floor 2: neither the kill nor the pooling/obs toggles changed an
    # answer.
    assert killed.golden() == clean_golden
    assert unpooled.golden() == clean_golden
    assert pooled.golden() == clean_golden
    # Floor 3: with the plane enabled, every answered request is
    # traceable — the SIGKILL phase included.
    assert clean.traceability() == 1.0
    assert killed.traceability() == 1.0
    # Floor 4: the aggregation document is internally consistent — the
    # merged serving.requests.total is exactly the sum of the
    # per-replica scrapes it was built from, and the quiesced sweep
    # reached every replica.
    assert fleet_doc["scrape_failures"] == []
    merged_total = fleet_doc["snapshot"]["counters"]["serving.requests.total"]
    scraped_total = sum(
        snapshot.get("counters", {}).get("serving.requests.total", 0)
        for snapshot in fleet_doc["replicas"].values()
    )
    assert merged_total == scraped_total
    assert merged_total > 0
    # Floor 5: the victim was restarted, pacing within the policy bound.
    victim_entries = [
        e for e in restart_log if e["replica_id"] == victim
    ]
    assert victim_entries, f"no restart recorded for {victim}"
    recovered = [e for e in victim_entries if e["healthy_at"] is not None]
    assert recovered, f"victim never back to healthy: {victim_entries}"
    final = recovered[-1]
    schedule_bound = sum(
        RESTART_POLICY.delay_for(i) for i in range(1, final["attempt"] + 1)
    )
    waited = final["respawn_at"] - final["detected_at"]
    assert waited >= RESTART_POLICY.delay_for(final["attempt"]) * 0.99
    assert (
        final["healthy_at"] - final["detected_at"]
        <= schedule_bound + STARTUP_TIMEOUT
    )
    assert counters["failovers"] >= 1  # the kill was client-invisible
    # Floor 6: the reporter stitches the kill → respawn incident from
    # the run dir the cluster just wrote.
    report_text = render_cluster_report(run_dir)
    assert "replica.killed" in report_text
    assert "replica.respawned" in report_text
    # Floor 7: the plane is cheap — obs-enabled fault-free p95 within
    # the overhead ceiling of the plain pooled p95.
    plain_p95 = pooled.percentiles()["p95"]
    obs_p95 = clean.percentiles()["p95"]
    assert obs_p95 <= plain_p95 * OVERHEAD_RELATIVE + OVERHEAD_ABSOLUTE, (
        f"observability overhead too high: obs p95 {obs_p95:.4f}s vs "
        f"plain pooled p95 {plain_p95:.4f}s"
    )

    percentiles = {
        "plain-unpooled": unpooled.percentiles(),
        "plain-pooled": pooled.percentiles(),
        "fault-free": clean.percentiles(),
        "replica-kill": killed.percentiles(),
    }
    manifest = obs.build_manifest(
        "bench_cluster",
        config={
            "clients": CLIENTS,
            "replicas": REPLICAS,
            "pool_size": POOL_SIZE,
            "scenarios": list(SCENARIOS),
            "budgets": list(BUDGETS),
            "victim": victim,
            "latency_seconds": percentiles,
            "connection_pooling": {
                "before": {
                    "p50": percentiles["plain-unpooled"]["p50"],
                    "p95": percentiles["plain-unpooled"]["p95"],
                },
                "after": {
                    "p50": percentiles["plain-pooled"]["p50"],
                    "p95": percentiles["plain-pooled"]["p95"],
                },
            },
            "traceability": {
                "fault-free": clean.traceability(),
                "replica-kill": killed.traceability(),
            },
            "router_counters": counters,
            "restart_log": restart_log,
            "scrape_failures": fleet_doc["scrape_failures"],
        },
        seeds={"seed": 99},
        metrics_snapshot=fleet_doc["snapshot"],
        artifacts={"run_dir": run_dir},
    )
    manifest_path = obs.write_manifest(
        manifest, str(tmp_path / "bench_cluster.manifest.json")
    )

    rows = []
    for label, result in (
        ("plain-unpooled", unpooled),
        ("plain-pooled", pooled),
        ("fault-free", clean),
        ("replica-kill", killed),
    ):
        p = percentiles[label]
        rows.append(
            (
                label,
                len(result.responses),
                len(result.errors),
                f"{p['p50'] * 1000:.1f}",
                f"{p['p95'] * 1000:.1f}",
                f"{p['p99'] * 1000:.1f}",
            )
        )
    emit(
        f"serving cluster under load ({CLIENTS} clients x 4 phases, "
        f"{REPLICAS} replicas, victim={victim} killed mid-phase, "
        "obs plane on for the last two phases)",
        ascii_table(
            ["phase", "requests", "errors", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
            rows,
        )
        + f"\nrestarts: {len(restart_log)}; router: {counters}"
        + f"\nfleet serving.requests.total: {merged_total} "
        + f"(= sum of {len(fleet_doc['replicas'])} replica scrapes)"
        + f"\nmanifest: {manifest_path}",
    )
