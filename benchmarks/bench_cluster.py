"""Chaos floor — the whole cluster stack under concurrent fire.

Three replicas behind the rendezvous router, 200+ concurrent clients
round-robining six distinct queries over three scenarios, two phases
through :mod:`repro.serving.loadgen`:

1. **Fault-free**: records the golden deterministic answer per query
   and the clean latency distribution.
2. **Replica kill**: the same flood, but once an eighth of the requests
   have completed, the replica *owning the hottest scenario* is
   SIGKILLed (whole process group — sampler workers included). The
   floor asserts:

   - **zero client-visible errors** — every request gets a 200, no
     transport failures (the router fails requests over to the
     rendezvous successor, which cold-rebuilds the shard
     byte-identically);
   - **killed-phase answers byte-identical to the fault-free golden**
     (volatile ``batched``/``cache_hit`` flags aside);
   - **restart within the backoff bound** — the supervisor's
     ``restart_log`` shows the victim respawned no earlier than its
     policy delay and healthy again within the schedule-plus-startup
     bound.

p50/p95/p99 for both phases land in a run manifest
(``bench_cluster.manifest.json`` under the pytest tmp dir).
"""

from __future__ import annotations

import time

from conftest import SCALE, emit

from repro import obs
from repro.communities.structure import Community, CommunityStructure
from repro.experiments.reporting import ascii_table
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.serving import (
    ClusterConfig,
    LoadGenerator,
    LoadPhase,
    ScenarioSpec,
    ServingCluster,
    assign_replica,
)
from repro.utils.retry import RetryPolicy

CLIENTS = max(200, int(250 * SCALE))
POOL_SIZE = max(96, int(192 * SCALE))
REPLICAS = 3
SCENARIOS = ("alpha", "beta", "gamma")
BUDGETS = (3, 5)
RESTART_POLICY = RetryPolicy(
    max_attempts=6, base_delay=0.25, max_delay=10.0, jitter=0.25, seed=0
)
STARTUP_TIMEOUT = 120.0


def _instance():
    graph, blocks = planted_partition_graph(
        [5] * 6, p_in=0.6, p_out=0.03, directed=True, seed=17
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    return graph.freeze(), communities


def _queries():
    distinct = [
        {"scenario": scenario, "budget": budget}
        for scenario in SCENARIOS
        for budget in BUDGETS
    ]
    return [distinct[i % len(distinct)] for i in range(CLIENTS)]


def _config(instance) -> ClusterConfig:
    specs = {
        name: ScenarioSpec(
            name=name, dataset="facebook", seed=99, pool_size=POOL_SIZE
        )
        for name in SCENARIOS
    }
    return ClusterConfig(
        specs,
        instances={name: instance for name in SCENARIOS},
        replicas=REPLICAS,
        workers=1,
        round_size=POOL_SIZE,
        restart_policy=RESTART_POLICY,
        heartbeat_interval=0.2,
        heartbeat_timeout=1.0,
        startup_timeout=STARTUP_TIMEOUT,
    )


def _await_victim_healthy(supervisor, victim: str, bound: float) -> float:
    """Seconds until the killed replica is healthy again (<= bound)."""
    began = time.monotonic()
    deadline = began + bound
    while time.monotonic() < deadline:
        health = {
            endpoint.replica_id: endpoint.healthy
            for endpoint in supervisor.endpoints()
        }
        if health.get(victim):
            return time.monotonic() - began
        time.sleep(0.1)
    raise AssertionError(
        f"victim {victim} not healthy within {bound:.1f}s: "
        f"{supervisor.restart_log}"
    )


def test_cluster_load(benchmark, tmp_path):
    instance = _instance()
    metrics_path = str(tmp_path / "bench_cluster.metrics.jsonl")
    queries = _queries()

    def run():
        with obs.session(metrics_out=metrics_path) as recorder:
            with ServingCluster(_config(instance)) as cluster:
                supervisor = cluster.supervisor
                host, port = cluster.router_address
                generator = LoadGenerator(host, port)
                victim = assign_replica(
                    SCENARIOS[0],
                    [e.replica_id for e in supervisor.endpoints()],
                )
                clean = generator.run_phase(
                    LoadPhase("fault-free", queries, clients=CLIENTS)
                )
                killed = generator.run_phase(
                    LoadPhase(
                        "replica-kill",
                        queries,
                        clients=CLIENTS,
                        chaos=lambda: supervisor.kill_replica(victim),
                        chaos_after=CLIENTS // 8,
                    )
                )
                # The phase can finish while the victim is still mid-
                # backoff; the restart bound is asserted on the log.
                schedule = sum(RESTART_POLICY.delays())
                _await_victim_healthy(
                    supervisor, victim, schedule + STARTUP_TIMEOUT
                )
                restart_log = [dict(e) for e in supervisor.restart_log]
                counters = dict(cluster.router_app.counters)
        return clean, killed, victim, restart_log, counters, recorder.metrics

    clean, killed, victim, restart_log, counters, metrics_snapshot = (
        benchmark.pedantic(run, rounds=1)
    )

    # Floor 1: zero client-visible errors, in both phases (golden()
    # raises on any transport error or non-200).
    clean_golden = clean.golden()
    killed_golden = killed.golden()
    # Floor 2: the kill never changed an answer.
    assert killed_golden == clean_golden
    # Floor 3: the victim was restarted, pacing within the policy bound.
    victim_entries = [
        e for e in restart_log if e["replica_id"] == victim
    ]
    assert victim_entries, f"no restart recorded for {victim}"
    recovered = [e for e in victim_entries if e["healthy_at"] is not None]
    assert recovered, f"victim never back to healthy: {victim_entries}"
    final = recovered[-1]
    schedule_bound = sum(
        RESTART_POLICY.delay_for(i) for i in range(1, final["attempt"] + 1)
    )
    waited = final["respawn_at"] - final["detected_at"]
    assert waited >= RESTART_POLICY.delay_for(final["attempt"]) * 0.99
    assert (
        final["healthy_at"] - final["detected_at"]
        <= schedule_bound + STARTUP_TIMEOUT
    )
    assert counters["failovers"] >= 1  # the kill was client-invisible

    percentiles = {
        "fault-free": clean.percentiles(),
        "replica-kill": killed.percentiles(),
    }
    manifest = obs.build_manifest(
        "bench_cluster",
        config={
            "clients": CLIENTS,
            "replicas": REPLICAS,
            "pool_size": POOL_SIZE,
            "scenarios": list(SCENARIOS),
            "budgets": list(BUDGETS),
            "victim": victim,
            "latency_seconds": percentiles,
            "router_counters": counters,
            "restart_log": restart_log,
        },
        seeds={"seed": 99},
        metrics_snapshot=metrics_snapshot,
        artifacts={"metrics": metrics_path},
    )
    manifest_path = obs.write_manifest(
        manifest, obs.manifest_path_for(metrics_path)
    )

    rows = []
    for label, result in (("fault-free", clean), ("replica-kill", killed)):
        p = percentiles[label]
        rows.append(
            (
                label,
                len(result.responses),
                len(result.errors),
                f"{p['p50'] * 1000:.1f}",
                f"{p['p95'] * 1000:.1f}",
                f"{p['p99'] * 1000:.1f}",
            )
        )
    emit(
        f"serving cluster under load ({CLIENTS} clients x 2 phases, "
        f"{REPLICAS} replicas, victim={victim} killed mid-phase)",
        ascii_table(
            ["phase", "requests", "errors", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
            rows,
        )
        + f"\nrestarts: {len(restart_log)}; router: {counters}"
        + f"\nmanifest: {manifest_path}",
    )
