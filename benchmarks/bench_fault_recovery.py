"""Microbenchmark — cost of self-healing in the parallel sampler.

A worker crash mid-run forces the engine to rebuild its process pool
and re-dispatch the failed batches with the same pre-drawn child seeds.
This bench quantifies that recovery: wall-clock of a crash-free
parallel run vs. a run that heals one injected worker kill, with the
byte-identical-output contract asserted on both. The overhead is the
price of one executor rebuild plus the re-dispatched batches — it
should stay within a small multiple of the crash-free time, not
degenerate into a full restart.
"""

import time

from conftest import SCALE, emit

from repro.communities.structure import Community, CommunityStructure
from repro.experiments.reporting import ascii_table
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.sampling.parallel import ParallelRICSampler
from repro.sampling.ric import RICSampler
from repro.utils.faults import Fault, FaultInjector
from repro.utils.retry import RetryPolicy

SAMPLES = max(400, int(1000 * SCALE))
BATCH = 32
WORKERS = 2
#: No backoff sleeping: the bench isolates rebuild/re-dispatch cost.
RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def _instance():
    graph, blocks = planted_partition_graph(
        [25] * 12, p_in=0.3, p_out=0.01, directed=True, seed=17
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    return graph, communities


def _timed_run(graph, communities, injector):
    with ParallelRICSampler(
        graph,
        communities,
        seed=11,
        workers=WORKERS,
        batch_size=BATCH,
        retry=RETRY,
        fault_injector=injector,
    ) as sampler:
        sampler.sample_many(16)  # warm the pool outside the clock
        start = time.perf_counter()
        samples = sampler.sample_many(SAMPLES)
        elapsed = time.perf_counter() - start
        profile = sampler.last_profile()
    return samples, elapsed, profile


def test_fault_recovery_overhead(benchmark):
    graph, communities = _instance()
    serial = RICSampler(graph, communities, seed=11)
    serial.sample_many(16)
    expected = serial.sample_many(SAMPLES)

    def run():
        clean, clean_elapsed, clean_profile = _timed_run(
            graph, communities, injector=None
        )
        crash_injector = FaultInjector(
            # Kill the worker on one mid-run batch, first attempt only.
            [Fault.kill_on("generate_batch", start=BATCH * 4, attempt=0)]
        )
        healed, healed_elapsed, healed_profile = _timed_run(
            graph, communities, crash_injector
        )
        return (
            clean,
            clean_elapsed,
            clean_profile,
            healed,
            healed_elapsed,
            healed_profile,
        )

    (
        clean,
        clean_elapsed,
        clean_profile,
        healed,
        healed_elapsed,
        healed_profile,
    ) = benchmark.pedantic(run, rounds=1)

    assert clean == expected
    assert healed == expected  # crash healed with identical output
    assert healed_profile["worker_restarts"] >= 1

    rows = [
        (
            "crash-free",
            f"{SAMPLES / clean_elapsed:.1f}",
            clean_profile["retries"],
            clean_profile["worker_restarts"],
            "1.00x",
        ),
        (
            "1 worker kill",
            f"{SAMPLES / healed_elapsed:.1f}",
            healed_profile["retries"],
            healed_profile["worker_restarts"],
            f"{healed_elapsed / clean_elapsed:.2f}x",
        ),
    ]
    emit(
        f"fault recovery overhead ({SAMPLES} samples, {WORKERS} workers, "
        f"batch={BATCH})",
        ascii_table(
            ["scenario", "samples/s", "retries", "pool rebuilds", "time vs clean"],
            rows,
        ),
    )
