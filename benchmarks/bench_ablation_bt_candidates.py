"""Ablation — BT's candidate_limit knob (quality vs runtime).

The faithful BT iterates over every touching node; the paper reports
this makes MB orders of magnitude slower (it could not finish on
Pokec). ``candidate_limit`` truncates the outer loop to the
most-touching nodes; this ablation measures how much quality that
sacrifices at each budget.
"""

from conftest import emit

from repro.core.bt import BT
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ascii_table
from repro.experiments.runner import build_instance, make_pool
from repro.utils.timing import Stopwatch

LIMITS = (5, 20, 60, None)
K = 8


def test_ablation_bt_candidate_limit(benchmark):
    config = ExperimentConfig(
        dataset="facebook",
        scale=0.1,
        pool_size=300,
        threshold="bounded",
        seed=17,
    )
    graph, communities = build_instance(config)
    pool = make_pool(graph, communities, config)

    def sweep():
        rows = []
        for limit in LIMITS:
            solver = BT(candidate_limit=limit)
            timer = Stopwatch()
            with timer:
                result = solver.solve(pool, K)
            rows.append(
                (
                    "full" if limit is None else str(limit),
                    result.objective,
                    timer.elapsed,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1)
    emit(
        "Ablation: BT candidate_limit (k=8, h=2, facebook-like)",
        ascii_table(["candidate_limit", "pool objective", "runtime (s)"], rows),
    )
    values = [r[1] for r in rows]
    times = [r[2] for r in rows]
    # The full loop is the quality ceiling; limits never beat it.
    assert max(values[:-1]) <= values[-1] + 1e-9
    # And truncation buys real time: tightest limit is fastest.
    assert times[0] <= times[-1] + 0.1
    # Even a modest limit retains most of the quality.
    assert values[1] >= 0.7 * values[-1]
