"""Microbenchmark — RIC sample generation throughput.

Algorithm 1's cost is proportional to the explored (reverse-reachable)
neighbourhood. This bench measures samples/second per dataset stand-in
and per threshold policy — the number that dominates every solver's
wall-clock.
"""

import os
import time

from conftest import SCALE, emit

from repro.communities.louvain import louvain_communities
from repro.communities.structure import Community, CommunityStructure
from repro.communities.thresholds import build_structure, constant_thresholds
from repro.datasets.registry import load_dataset
from repro.experiments.reporting import ascii_table
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.sampling.parallel import ParallelRICSampler
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler

DATASETS = ("facebook", "wikivote", "epinions")
SAMPLES = max(300, int(500 * SCALE))
PARALLEL_SAMPLES = max(600, int(1500 * SCALE))
WORKER_COUNTS = (1, 2, 4)


def test_ric_throughput(benchmark):
    instances = []
    for name in DATASETS:
        dataset = load_dataset(name, scale=0.15 * SCALE, seed=7)
        blocks = louvain_communities(dataset.graph, seed=7)
        communities = build_structure(
            blocks, size_cap=8, threshold_policy=constant_thresholds(2)
        )
        instances.append((name, dataset.graph, communities))

    def run():
        rows = []
        for name, graph, communities in instances:
            sampler = RICSampler(graph, communities, seed=11)
            pool = RICSamplePool(sampler)
            start = time.perf_counter()
            pool.grow(SAMPLES)
            elapsed = time.perf_counter() - start
            total_reach = sum(
                len(reach)
                for sample in pool.samples
                for reach in sample.reach_sets
            )
            rows.append(
                (
                    name,
                    graph.num_nodes,
                    graph.num_edges,
                    SAMPLES / elapsed,
                    total_reach / SAMPLES,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    emit(
        f"RIC sampling throughput ({SAMPLES} samples per dataset)",
        ascii_table(
            ["dataset", "nodes", "edges", "samples/s", "avg reach size"],
            rows,
        ),
    )
    for _, _, _, throughput, _ in rows:
        assert throughput > 50  # laptop-scale sanity floor


def test_serial_vs_parallel_throughput(benchmark):
    """Serial vs. process-pool RIC sampling on a planted-partition graph.

    The parallel engine must produce the identical sample sequence, so
    the only question is wall-clock: this bench reports samples/s and
    speedup per worker count. The >=2x speedup assertion only runs on
    hosts with at least 4 cores — on smaller machines the numbers are
    still emitted for inspection, but dispatch overhead with nothing to
    run on makes a speedup target meaningless.
    """
    graph, blocks = planted_partition_graph(
        [30] * 20, p_in=0.25, p_out=0.005, directed=True, seed=17
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )

    def run():
        rows = []
        sampler = RICSampler(graph, communities, seed=11)
        start = time.perf_counter()
        expected = sampler.sample_many(PARALLEL_SAMPLES)
        serial_elapsed = time.perf_counter() - start
        serial_rate = PARALLEL_SAMPLES / serial_elapsed
        rows.append(("serial", 1, serial_rate, 1.0))
        for workers in WORKER_COUNTS:
            with ParallelRICSampler(
                graph, communities, seed=11, workers=workers
            ) as parallel:
                parallel.sample_many(32)  # warm the worker pool
                start = time.perf_counter()
                got = parallel.sample_many(PARALLEL_SAMPLES)
                elapsed = time.perf_counter() - start
            assert got[: len(expected) - 32] == expected[32:]
            rows.append(
                (
                    "parallel",
                    workers,
                    PARALLEL_SAMPLES / elapsed,
                    serial_elapsed / elapsed,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    emit(
        f"serial vs parallel RIC throughput "
        f"({PARALLEL_SAMPLES} samples, planted partition 600 nodes)",
        ascii_table(
            ["engine", "workers", "samples/s", "speedup vs serial"],
            [(e, w, f"{r:.1f}", f"{s:.2f}x") for e, w, r, s in rows],
        ),
    )
    if (os.cpu_count() or 1) >= 4:
        best = max(s for _, _, _, s in rows[1:])
        assert best >= 2.0, f"expected >=2x speedup at 4 workers, got {best:.2f}x"
