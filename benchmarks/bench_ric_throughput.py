"""Microbenchmark — RIC sample generation throughput.

Algorithm 1's cost is proportional to the explored (reverse-reachable)
neighbourhood. This bench measures samples/second per dataset stand-in
and per threshold policy — the number that dominates every solver's
wall-clock.
"""

import time

from conftest import SCALE, emit

from repro.communities.louvain import louvain_communities
from repro.communities.thresholds import build_structure, constant_thresholds
from repro.datasets.registry import load_dataset
from repro.experiments.reporting import ascii_table
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler

DATASETS = ("facebook", "wikivote", "epinions")
SAMPLES = max(300, int(500 * SCALE))


def test_ric_throughput(benchmark):
    instances = []
    for name in DATASETS:
        dataset = load_dataset(name, scale=0.15 * SCALE, seed=7)
        blocks = louvain_communities(dataset.graph, seed=7)
        communities = build_structure(
            blocks, size_cap=8, threshold_policy=constant_thresholds(2)
        )
        instances.append((name, dataset.graph, communities))

    def run():
        rows = []
        for name, graph, communities in instances:
            sampler = RICSampler(graph, communities, seed=11)
            pool = RICSamplePool(sampler)
            start = time.perf_counter()
            pool.grow(SAMPLES)
            elapsed = time.perf_counter() - start
            total_reach = sum(
                len(reach)
                for sample in pool.samples
                for reach in sample.reach_sets
            )
            rows.append(
                (
                    name,
                    graph.num_nodes,
                    graph.num_edges,
                    SAMPLES / elapsed,
                    total_reach / SAMPLES,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    emit(
        f"RIC sampling throughput ({SAMPLES} samples per dataset)",
        ascii_table(
            ["dataset", "nodes", "edges", "samples/s", "avg reach size"],
            rows,
        ),
    )
    for _, _, _, throughput, _ in rows:
        assert throughput > 50  # laptop-scale sanity floor
