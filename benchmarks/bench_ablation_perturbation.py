"""Ablation — seed-set robustness under edge-weight perturbation.

Influence probabilities are noisy estimates in deployment; this bench
perturbs every weight by up to ±δ and re-evaluates the UBG and KS seed
sets. Expectation: the diffusion-aware UBG solution degrades gracefully
(its benefit comes from many redundant paths); the topology-blind KS
baseline, which only ever counts its own seeded members, barely moves —
but from a much lower baseline.
"""

from conftest import emit

from repro.baselines.knapsack import ks_seeds
from repro.core.ubg import UBG
from repro.experiments.config import ExperimentConfig
from repro.experiments.perturbation import perturbation_study
from repro.experiments.reporting import ascii_table
from repro.experiments.runner import build_instance, make_pool

DELTAS = (0.1, 0.3)


def test_ablation_perturbation_robustness(benchmark):
    config = ExperimentConfig(
        dataset="facebook", scale=0.12, pool_size=500, eval_trials=150, seed=7
    )
    graph, communities = build_instance(config)
    pool = make_pool(graph, communities, config)
    ubg_seeds = UBG().solve(pool, 10).seeds
    ks = ks_seeds(communities, 10)

    def run():
        rows = []
        for label, seeds in (("UBG", ubg_seeds), ("KS", ks)):
            for delta in DELTAS:
                result = perturbation_study(
                    graph,
                    communities,
                    seeds,
                    delta=delta,
                    num_graphs=6,
                    eval_trials=150,
                    seed=11,
                )
                rows.append(
                    (
                        label,
                        delta,
                        result.baseline_benefit,
                        result.mean_benefit,
                        result.worst_benefit,
                        result.relative_degradation,
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    emit(
        "Ablation: robustness to ±delta weight perturbation (k=10)",
        ascii_table(
            ["algorithm", "delta", "baseline", "mean", "worst", "degradation"],
            rows,
        ),
    )
    ubg_rows = [r for r in rows if r[0] == "UBG"]
    ks_rows = [r for r in rows if r[0] == "KS"]
    # UBG stays clearly above KS even under the strongest perturbation.
    assert min(r[4] for r in ubg_rows) >= max(r[3] for r in ks_rows) * 0.7
    # Multiplicative jitter keeps UBG within a modest degradation band.
    assert all(abs(r[5]) < 0.4 for r in ubg_rows)
