"""Fig. 5 — benefit vs k, regular case (h = 0.5|C|).

Shape expectations from the paper: UBG returns the best solutions; KS
is the worst; the gap between our methods and classic IM grows with k;
all algorithms are close at small k.
"""

from conftest import emit

from repro.experiments.figures import fig5_benefit_regular
from repro.experiments.reporting import format_series

ALGORITHMS = ("UBG", "MAF", "HBC", "KS", "IM")
K_VALUES = (5, 10, 20, 30)


def _series(results):
    return {
        name: [run.benefit for run in results[name]] for name in ALGORITHMS
    }


def test_fig5_facebook_like(benchmark, bench_config):
    results = benchmark.pedantic(
        fig5_benefit_regular,
        kwargs=dict(
            dataset="facebook",
            k_values=K_VALUES,
            algorithms=ALGORITHMS,
            base_config=bench_config,
        ),
        rounds=1,
    )
    series = _series(results)
    emit(
        "Fig. 5 (facebook-like analogue): benefit vs k, h=0.5|C|",
        format_series("k", list(K_VALUES), series),
    )
    # Monotone non-decreasing benefit in k for our solvers (loose band
    # for Monte-Carlo noise).
    for name in ("UBG", "MAF"):
        values = series[name]
        for i in range(1, len(values)):
            assert values[i] >= values[i - 1] * 0.9, name
    # UBG/MAF dominate KS at every k and beat IM at the largest k.
    for i, _ in enumerate(K_VALUES):
        assert max(series["UBG"][i], series["MAF"][i]) >= series["KS"][i] * 0.95
    assert max(series["UBG"][-1], series["MAF"][-1]) >= series["IM"][-1] * 0.95


def test_fig5_wikivote_like(benchmark, bench_config):
    config = bench_config.with_overrides(dataset="wikivote", scale=0.25)
    results = benchmark.pedantic(
        fig5_benefit_regular,
        kwargs=dict(
            dataset="wikivote",
            k_values=(5, 15, 30),
            algorithms=ALGORITHMS,
            base_config=config,
        ),
        rounds=1,
    )
    series = _series(results)
    emit(
        "Fig. 5 (wikivote-like analogue): benefit vs k, h=0.5|C|",
        format_series("k", [5, 15, 30], series),
    )
    assert max(series["UBG"][-1], series["MAF"][-1]) >= series["KS"][-1] * 0.95
