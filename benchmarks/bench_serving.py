"""Load benchmark — the always-on shard server under concurrent fire.

Two phases against real HTTP (stdlib client threads, one socket per
simulated client):

1. **Fault-free**: hundreds of concurrent clients across a handful of
   distinct ``(budget, solver)`` queries — exercising warm-shard reuse,
   request batching and the per-version solve cache — recording the
   golden deterministic fields per query and the latency distribution.
2. **One worker kill**: a fresh server whose first sampler batch
   hard-kills its worker process mid-request. The acceptance floor:
   zero dropped requests (every client gets a 200) and every response's
   deterministic fields (``seeds``, ``objective``, ``num_samples``)
   byte-identical to the fault-free phase.

p50/p95/p99 latencies and request counters land in a run manifest next
to the metrics artifact (``bench_serving.manifest.json`` under the
pytest tmp dir, printed at the end).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

from conftest import SCALE, emit

from repro import obs
from repro.communities.structure import Community, CommunityStructure
from repro.experiments.reporting import ascii_table
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.serving import ScenarioSpec, ShardApp, ShardStore, start_http_server
from repro.utils.faults import Fault, FaultInjector
from repro.utils.retry import RetryPolicy

CLIENTS = max(200, int(250 * SCALE))
POOL_SIZE = max(96, int(192 * SCALE))
WORKERS = 2
QUERIES = ({"budget": 4}, {"budget": 8}, {"budget": 4, "solver": "GreedyC"})
RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def _instance():
    graph, blocks = planted_partition_graph(
        [10] * 10, p_in=0.4, p_out=0.02, directed=True, seed=17
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    return graph.freeze(), communities


def _post(port: int, payload: dict):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/solve",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _run_phase(instance, injector):
    """Fire CLIENTS concurrent requests; returns (responses, latencies,
    app counters)."""
    spec = ScenarioSpec(
        name="load", dataset="facebook", seed=99, pool_size=POOL_SIZE
    )
    store = ShardStore(
        {spec.name: spec},
        instances={spec.name: instance},
        workers=WORKERS,
        round_size=POOL_SIZE,
        retry=RETRY,
        fault_injector=injector,
    )
    app = ShardApp(store)
    server = start_http_server(app)
    port = server.server_address[1]
    responses = [None] * CLIENTS
    latencies = [None] * CLIENTS

    def client(i: int) -> None:
        payload = dict(QUERIES[i % len(QUERIES)], scenario="load")
        began = time.perf_counter()
        responses[i] = _post(port, payload)
        latencies[i] = time.perf_counter() - began

    try:
        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600)
        counters = dict(app.requests)
        counters.update(store.counters)
    finally:
        server.shutdown()
        server.server_close()
        app.close()
    return responses, latencies, counters


def _percentile(sorted_values, q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _golden_by_query(responses):
    golden = {}
    for i, (status, body) in enumerate(responses):
        assert status == 200, f"client {i} got {status}: {body}"
        key = (body["budget"], body["solver"])
        fields = (body["seeds"], body["objective"], body["num_samples"])
        assert golden.setdefault(key, fields) == fields
    return golden


def test_serving_load(benchmark, tmp_path):
    instance = _instance()
    metrics_path = str(tmp_path / "bench_serving.metrics.jsonl")

    def run():
        with obs.session(metrics_out=metrics_path) as recorder:
            clean = _run_phase(instance, injector=None)
            injector = FaultInjector(
                # First batch of the shard's first merge round kills its
                # worker process; the re-dispatch must be invisible.
                [Fault.kill_on("generate_batch", start=0, attempt=0)]
            )
            killed = _run_phase(instance, injector)
        return clean, killed, recorder.metrics

    (clean, killed, metrics_snapshot) = benchmark.pedantic(run, rounds=1)

    clean_golden = _golden_by_query(clean[0])  # also: zero non-200s
    killed_golden = _golden_by_query(killed[0])
    assert killed_golden == clean_golden  # byte-identical across the kill
    assert all(latency is not None for latency in killed[1])  # zero drops

    rows = []
    percentiles = {}
    for label, (_, latencies, counters) in (
        ("fault-free", clean),
        ("1 worker kill", killed),
    ):
        ordered = sorted(latencies)
        p50, p95, p99 = (
            _percentile(ordered, 0.50),
            _percentile(ordered, 0.95),
            _percentile(ordered, 0.99),
        )
        percentiles[label] = {"p50": p50, "p95": p95, "p99": p99}
        rows.append(
            (
                label,
                counters["total"],
                counters["batched"],
                counters["failed"],
                f"{p50 * 1000:.1f}",
                f"{p95 * 1000:.1f}",
                f"{p99 * 1000:.1f}",
            )
        )

    manifest = obs.build_manifest(
        "bench_serving",
        config={
            "clients": CLIENTS,
            "pool_size": POOL_SIZE,
            "workers": WORKERS,
            "queries": list(QUERIES),
            "latency_seconds": percentiles,
        },
        seeds={"seed": 99},
        metrics_snapshot=metrics_snapshot,
        artifacts={"metrics": metrics_path},
    )
    manifest_path = obs.write_manifest(
        manifest, obs.manifest_path_for(metrics_path)
    )

    emit(
        f"shard server under load ({CLIENTS} clients x 2 phases, "
        f"{WORKERS} workers, pool={POOL_SIZE})",
        ascii_table(
            [
                "phase",
                "requests",
                "batched",
                "failed",
                "p50 (ms)",
                "p95 (ms)",
                "p99 (ms)",
            ],
            rows,
        )
        + f"\nmanifest: {manifest_path}",
    )
