"""Load benchmark — the always-on shard server under concurrent fire.

Two phases against real HTTP, driven by the shared
:mod:`repro.serving.loadgen` harness (one connection per request, like
real independent clients):

1. **Fault-free**: hundreds of concurrent clients across a handful of
   distinct ``(budget, solver)`` queries — exercising warm-shard reuse,
   request batching and the per-version solve cache — recording the
   golden deterministic fields per query and the latency distribution.
2. **One worker kill**: a fresh server whose first sampler batch
   hard-kills its worker process mid-request. The acceptance floor:
   zero dropped requests (every client gets a 200) and every response's
   deterministic fields (``seeds``, ``objective``, ``num_samples``)
   byte-identical to the fault-free phase.

p50/p95/p99 latencies and request counters land in a run manifest next
to the metrics artifact (``bench_serving.manifest.json`` under the
pytest tmp dir, printed at the end).
"""

from __future__ import annotations

from conftest import SCALE, emit

from repro import obs
from repro.communities.structure import Community, CommunityStructure
from repro.experiments.reporting import ascii_table
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.serving import (
    LoadGenerator,
    LoadPhase,
    ScenarioSpec,
    ShardApp,
    ShardStore,
    start_http_server,
)
from repro.utils.faults import Fault, FaultInjector
from repro.utils.retry import RetryPolicy

CLIENTS = max(200, int(250 * SCALE))
POOL_SIZE = max(96, int(192 * SCALE))
WORKERS = 2
QUERIES = ({"budget": 4}, {"budget": 8}, {"budget": 4, "solver": "GreedyC"})
RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def _instance():
    graph, blocks = planted_partition_graph(
        [10] * 10, p_in=0.4, p_out=0.02, directed=True, seed=17
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    return graph.freeze(), communities


def _run_phase(name, instance, injector):
    """Fire CLIENTS concurrent requests; returns (PhaseResult, counters)."""
    spec = ScenarioSpec(
        name="load", dataset="facebook", seed=99, pool_size=POOL_SIZE
    )
    store = ShardStore(
        {spec.name: spec},
        instances={spec.name: instance},
        workers=WORKERS,
        round_size=POOL_SIZE,
        retry=RETRY,
        fault_injector=injector,
    )
    app = ShardApp(store)
    server = start_http_server(app)
    port = server.server_address[1]
    queries = [
        dict(QUERIES[i % len(QUERIES)], scenario="load")
        for i in range(CLIENTS)
    ]
    try:
        generator = LoadGenerator("127.0.0.1", port)
        result = generator.run_phase(
            LoadPhase(name, queries, clients=CLIENTS)
        )
        counters = dict(app.requests)
        counters.update(store.counters)
    finally:
        server.shutdown()
        server.server_close()
        app.close()
    return result, counters


def test_serving_load(benchmark, tmp_path):
    instance = _instance()
    metrics_path = str(tmp_path / "bench_serving.metrics.jsonl")

    def run():
        with obs.session(metrics_out=metrics_path) as recorder:
            clean = _run_phase("fault-free", instance, injector=None)
            injector = FaultInjector(
                # First batch of the shard's first merge round kills its
                # worker process; the re-dispatch must be invisible.
                [Fault.kill_on("generate_batch", start=0, attempt=0)]
            )
            killed = _run_phase("1 worker kill", instance, injector)
        return clean, killed, recorder.metrics

    (clean, killed, metrics_snapshot) = benchmark.pedantic(run, rounds=1)

    # golden() also asserts zero transport errors and zero non-200s.
    clean_golden = clean[0].golden()
    killed_golden = killed[0].golden()
    assert killed_golden == clean_golden  # byte-identical across the kill

    rows = []
    percentiles = {}
    for result, counters in (clean, killed):
        p = result.percentiles()
        percentiles[result.phase] = p
        rows.append(
            (
                result.phase,
                counters["total"],
                counters["batched"],
                counters["failed"],
                f"{p['p50'] * 1000:.1f}",
                f"{p['p95'] * 1000:.1f}",
                f"{p['p99'] * 1000:.1f}",
            )
        )

    manifest = obs.build_manifest(
        "bench_serving",
        config={
            "clients": CLIENTS,
            "pool_size": POOL_SIZE,
            "workers": WORKERS,
            "queries": list(QUERIES),
            "latency_seconds": percentiles,
        },
        seeds={"seed": 99},
        metrics_snapshot=metrics_snapshot,
        artifacts={"metrics": metrics_path},
    )
    manifest_path = obs.write_manifest(
        manifest, obs.manifest_path_for(metrics_path)
    )

    emit(
        f"shard server under load ({CLIENTS} clients x 2 phases, "
        f"{WORKERS} workers, pool={POOL_SIZE})",
        ascii_table(
            [
                "phase",
                "requests",
                "batched",
                "failed",
                "p50 (ms)",
                "p95 (ms)",
                "p99 (ms)",
            ],
            rows,
        )
        + f"\nmanifest: {manifest_path}",
    )
