"""Record one kernel-benchmark entry into ``BENCH_kernels.json``.

Thin wrapper around :mod:`repro.experiments.kernel_bench` so the
perf-regression trajectory can be refreshed without remembering CLI
flags::

    PYTHONPATH=src python benchmarks/record_bench.py [samples] [k] [--allow-dirty]

Equivalent to ``python -m repro bench --record``. The artifact lives
next to this script; each run appends one timestamped entry stamped
with the environment fingerprint (git SHA, interpreter, platform), so
the file is a trajectory of kernel performance over the repo's
history. Because the stamped SHA must describe the measured code, a
dirty working tree is refused unless ``--allow-dirty`` is passed.
"""

from __future__ import annotations

import sys


def main(argv=None) -> int:
    """Run the kernel bench once and append it to the trajectory."""
    argv = sys.argv[1:] if argv is None else argv
    allow_dirty = "--allow-dirty" in argv
    positional = [a for a in argv if not a.startswith("--")]
    samples = int(positional[0]) if len(positional) > 0 else 10_000
    k = int(positional[1]) if len(positional) > 1 else 10

    from repro.experiments.kernel_bench import (
        default_artifact_path,
        format_entry,
        record_entry,
        run_kernel_bench,
    )
    from repro.obs import require_clean_tree

    require_clean_tree(allow_dirty)
    entry = run_kernel_bench(samples=samples, k=k)
    print(format_entry(entry))
    data = record_entry(entry)
    print(
        f"recorded entry {len(data['trajectory'])} in "
        f"{default_artifact_path()}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
