"""Fig. 8 — the UBG sandwich ratio c(S_nu)/nu(S_nu) vs k.

Shape expectations from the paper: the ratio rises toward 1 as k grows,
and the bounded-threshold (h=2) curve sits above the regular (h=0.5|C|)
curve at matched k — smaller thresholds make c(.) "more submodular".
"""

from conftest import emit

from repro.experiments.figures import fig8_ubg_ratio
from repro.experiments.reporting import format_series

K_VALUES = (2, 5, 10, 25)


def test_fig8_ratio_shapes(benchmark, bench_config):
    results = benchmark.pedantic(
        fig8_ubg_ratio,
        kwargs=dict(
            dataset="facebook",
            k_values=K_VALUES,
            thresholds=("fractional", "bounded"),
            base_config=bench_config,
        ),
        rounds=1,
    )
    emit(
        "Fig. 8 analogue: UBG ratio c(S_nu)/nu(S_nu) vs k",
        format_series("k", list(K_VALUES), results),
    )
    for mode, ratios in results.items():
        assert all(0.0 <= r <= 1.0 + 1e-9 for r in ratios), mode
        # Rising toward 1 with k (allow small non-monotonic noise).
        assert ratios[-1] >= ratios[0] - 0.05, mode
    # Bounded thresholds give the larger ratio at the largest k.
    assert results["bounded"][-1] >= results["fractional"][-1] - 0.05
    # And at the largest k the bounded ratio is close to 1.
    assert results["bounded"][-1] > 0.6


def test_fig8_ratio_wikivote(benchmark, bench_config):
    config = bench_config.with_overrides(dataset="wikivote", scale=0.2)
    results = benchmark.pedantic(
        fig8_ubg_ratio,
        kwargs=dict(
            dataset="wikivote",
            k_values=(5, 20),
            thresholds=("bounded",),
            base_config=config,
        ),
        rounds=1,
    )
    emit(
        "Fig. 8 analogue (wikivote-like, h=2)",
        format_series("k", [5, 20], results),
    )
    assert results["bounded"][-1] >= results["bounded"][0] - 0.05
