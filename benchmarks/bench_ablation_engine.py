"""Ablation — coverage-engine choice (bitset masks vs reference sets).

The bitset engine packs per-sample covered-member masks into integers;
marginal evaluation becomes a few AND/OR/popcounts. Identical results
by construction (property-tested); this ablation measures the speedup
on a realistic pool.
"""

from conftest import emit

from repro.core.greedy import greedy_maxr
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_instance, make_pool
from repro.utils.timing import Stopwatch

K = 15


def test_ablation_engine_choice(benchmark):
    config = ExperimentConfig(
        dataset="facebook", scale=0.2, pool_size=1200, seed=7
    )
    graph, communities = build_instance(config)
    pool = make_pool(graph, communities, config)

    reference_timer = Stopwatch()
    with reference_timer:
        reference_seeds = greedy_maxr(pool, K, engine="reference")

    bitset_timer = Stopwatch()
    bitset_seeds = benchmark.pedantic(
        greedy_maxr, args=(pool, K), kwargs={"engine": "bitset"}, rounds=1
    )
    with bitset_timer:
        greedy_maxr(pool, K, engine="bitset")

    emit(
        "Ablation: coverage engine (greedy on c_R, k=15, |R|=1200)",
        f"seeds identical: {reference_seeds == bitset_seeds}\n"
        f"runtime(s) reference={reference_timer.elapsed:.3f} "
        f"bitset={bitset_timer.elapsed:.3f} "
        f"speedup={reference_timer.elapsed / max(bitset_timer.elapsed, 1e-9):.1f}x",
    )
    # Same algorithm, same tie-breaking: identical seed sequences.
    assert reference_seeds == bitset_seeds
    # Bitset should never be dramatically slower.
    assert bitset_timer.elapsed <= reference_timer.elapsed * 3.0 + 0.1
