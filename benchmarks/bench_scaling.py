"""Ablation — cost scaling with network size.

Sweeps the dataset scale and reports sampling / solver runtime and
quality per size. Expectation: MAF stays cheap as the network grows;
UBG's greedy cost grows with coverage size; RIC sampling time grows
roughly with the explored neighbourhood.
"""

from conftest import emit

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ascii_table
from repro.experiments.scaling import scaling_study

SCALES = (0.1, 0.2, 0.4)


def test_scaling_study(benchmark):
    config = ExperimentConfig(
        dataset="wikivote", scale=0.2, pool_size=500, eval_trials=80, seed=7
    )
    points = benchmark.pedantic(
        scaling_study, kwargs=dict(base_config=config, scales=SCALES, k=10),
        rounds=1,
    )
    emit(
        "Ablation: cost vs network size (wikivote-like, k=10)",
        ascii_table(
            [
                "scale",
                "nodes",
                "edges",
                "r",
                "sampling(s)",
                "UBG(s)",
                "MAF(s)",
                "UBG c(S)",
                "MAF c(S)",
            ],
            [
                (
                    p.scale,
                    p.num_nodes,
                    p.num_edges,
                    p.num_communities,
                    p.sampling_seconds,
                    p.ubg_seconds,
                    p.maf_seconds,
                    p.ubg_benefit,
                    p.maf_benefit,
                )
                for p in points
            ],
        ),
    )
    assert [p.num_nodes for p in points] == sorted(
        p.num_nodes for p in points
    )
    # MAF stays cheaper than UBG at every size, and UBG matches or
    # beats MAF's quality (it spends the extra time on the greedy).
    for p in points:
        assert p.maf_seconds <= p.ubg_seconds * 2.0 + 0.05
        assert p.ubg_benefit >= p.maf_benefit * 0.9
    # UBG's solve cost grows with the instance.
    assert points[-1].ubg_seconds >= points[0].ubg_seconds * 0.8
