"""Ablation — CELF lazy evaluation vs eager greedy on the ν objective.

UBG's ν arm is submodular, so lazy evaluation is sound; this ablation
quantifies the speedup and verifies the two selections score equally.
"""

from conftest import emit

from repro.core.greedy import greedy_eager_nu, lazy_greedy_nu
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_instance, make_pool
from repro.utils.timing import Stopwatch

K = 20


def _pool():
    config = ExperimentConfig(
        dataset="facebook", scale=0.2, pool_size=1200, seed=7
    )
    graph, communities = build_instance(config)
    return make_pool(graph, communities, config)


def test_ablation_lazy_vs_eager(benchmark):
    pool = _pool()

    eager_timer = Stopwatch()
    with eager_timer:
        eager_seeds = greedy_eager_nu(pool, K)

    lazy_timer = Stopwatch()
    lazy_seeds = benchmark.pedantic(
        lazy_greedy_nu, args=(pool, K), rounds=1
    )
    with lazy_timer:
        lazy_greedy_nu(pool, K)

    eager_value = pool.fractional_count(eager_seeds)
    lazy_value = pool.fractional_count(lazy_seeds)
    emit(
        "Ablation: CELF (lazy) vs eager greedy on nu_R",
        f"objective  eager={eager_value:.3f}  lazy={lazy_value:.3f}\n"
        f"runtime(s) eager={eager_timer.elapsed:.3f}  "
        f"lazy={lazy_timer.elapsed:.3f}  "
        f"speedup={eager_timer.elapsed / max(lazy_timer.elapsed, 1e-9):.1f}x",
    )
    # Lazy matches eager's objective up to tie-breaking divergence
    # (equal-gain candidates may be picked in a different order).
    assert lazy_value >= eager_value * 0.995
    # And not be slower by more than noise.
    assert lazy_timer.elapsed <= eager_timer.elapsed * 3.0 + 0.1
