"""Thin setup.py shim.

Metadata lives in pyproject.toml; this file exists so the package can be
installed in environments whose setuptools predates bundled bdist_wheel
support (legacy editable installs: ``pip install -e . --no-use-pep517
--no-build-isolation``).
"""

from setuptools import setup

setup()
