"""Electoral-college campaign targeting (the paper's third setting).

Each community is a state: winner-take-all, so a state "converts" only
when enough of its voters are influenced (its activation threshold),
and yields its electoral votes (its benefit). The campaign has budget
for k grassroots ambassadors and wants to maximize expected electoral
votes — a textbook IMC instance where per-voter spread (classic IM) is
the wrong objective: 49% of a state is worth nothing.

Run:  python examples/election_campaign.py
"""

from repro import (
    UBG,
    BenefitEvaluator,
    Community,
    CommunityStructure,
    assign_weighted_cascade,
    barabasi_albert_graph,
    im_seeds,
    ks_seeds,
    solve_imc,
)

SEED = 5
K = 14

# (state name, voters in the sample, electoral votes, threshold fraction)
STATES = [
    ("Alden", 30, 9, 0.5),
    ("Brook", 24, 6, 0.5),
    ("Cedar", 40, 12, 0.5),
    ("Dover", 18, 4, 0.5),
    ("Elm", 36, 11, 0.5),
    ("Frost", 22, 5, 0.5),
    ("Gale", 28, 8, 0.5),
    ("Harbor", 32, 10, 0.5),
]


def main() -> None:
    total_voters = sum(size for _, size, _, _ in STATES)
    # A national social network: scale-free (media-hub heavy) with
    # states as contiguous id blocks.
    graph = barabasi_albert_graph(total_voters, 4, directed=False, seed=SEED)
    assign_weighted_cascade(graph)

    communities = []
    start = 0
    for name, size, votes, fraction in STATES:
        communities.append(
            Community(
                members=tuple(range(start, start + size)),
                threshold=max(1, round(fraction * size)),
                benefit=float(votes),
            )
        )
        start += size
    structure = CommunityStructure(communities)
    total_votes = structure.total_benefit
    print(
        f"electorate: {total_voters} voters across {len(STATES)} states, "
        f"{total_votes:g} electoral votes at stake"
    )

    evaluate = BenefitEvaluator(graph, structure, num_trials=1500, seed=SEED)
    print(f"\nexpected electoral votes with k={K} ambassadors:")
    strategies = {
        "IMC (UBG)": solve_imc(
            graph, structure, k=K, solver=UBG(), seed=SEED, max_samples=5_000
        ).selection.seeds,
        "classic IM": tuple(im_seeds(graph, K, seed=SEED, max_samples=10_000)),
        "KS (ignore topology)": tuple(ks_seeds(structure, K)),
    }
    for label, seeds in strategies.items():
        votes = evaluate(seeds)
        print(f"  {label:<22}{votes:7.2f} EV  ({100 * votes / total_votes:5.1f}%)")

    # Which states does the IMC strategy actually target?
    targeted = {}
    for seed_node in strategies["IMC (UBG)"]:
        idx = structure.community_of(seed_node)
        if idx is not None:
            targeted[STATES[idx][0]] = targeted.get(STATES[idx][0], 0) + 1
    print("\nIMC ambassador allocation by state:")
    for state, count in sorted(targeted.items(), key=lambda kv: -kv[1]):
        print(f"  {state:<8}{count} ambassadors")


if __name__ == "__main__":
    main()
