"""Power-grid information-attack analysis (the paper's second setting).

Defensive vulnerability assessment of a social-network-coupled smart
grid (Pan et al., IEEE Access 2017, cited by the paper): an adversary
who influences enough electric users *within a geographic neighborhood*
(e.g. to synchronously shift load) can trigger inter-area oscillations.
Neighborhoods are disjoint communities; a neighborhood is "compromised"
when a threshold fraction of its residents is influenced, and its
impact weight is its load share.

A grid operator runs this analysis to find the most dangerous k
accounts to monitor/harden — comparing how each algorithm bounds the
worst-case compromised load.

Run:  python examples/grid_attack.py
"""

from repro import (
    MAF,
    UBG,
    BenefitEvaluator,
    Community,
    CommunityStructure,
    assign_weighted_cascade,
    hbc_seeds,
    high_degree_seeds,
    solve_imc,
    watts_strogatz_graph,
)
from repro.rng import make_rng

SEED = 23
K = 8
NUM_NEIGHBORHOODS = 25
HOMES_PER_NEIGHBORHOOD = 8


def main() -> None:
    rng = make_rng(SEED)
    n = NUM_NEIGHBORHOODS * HOMES_PER_NEIGHBORHOOD
    # Residents talk mostly to geographic neighbours with a few long
    # "online" shortcuts — a small-world social layer over the grid.
    graph = watts_strogatz_graph(n, neighbors=6, rewire_probability=0.15, seed=SEED)
    assign_weighted_cascade(graph)

    # Contiguous id blocks are neighborhoods; each needs 50% of homes
    # influenced to destabilise, weighted by its (randomised) load share.
    communities = CommunityStructure(
        [
            Community(
                members=tuple(
                    range(
                        i * HOMES_PER_NEIGHBORHOOD,
                        (i + 1) * HOMES_PER_NEIGHBORHOOD,
                    )
                ),
                threshold=HOMES_PER_NEIGHBORHOOD // 2,
                benefit=float(rng.randint(5, 20)),  # MW of local load
            )
            for i in range(NUM_NEIGHBORHOODS)
        ]
    )
    total_load = communities.total_benefit
    print(
        f"grid: {NUM_NEIGHBORHOODS} neighborhoods, {n} homes, "
        f"{total_load:g} MW total load"
    )

    evaluate = BenefitEvaluator(graph, communities, num_trials=1000, seed=SEED)
    print(f"\nworst-case compromised load for k={K} attacker-controlled accounts:")
    for label, seeds in (
        (
            "IMC attack (UBG)",
            solve_imc(
                graph, communities, k=K, solver=UBG(), seed=SEED,
                max_samples=20_000,
            ).selection.seeds,
        ),
        (
            "IMC attack (MAF)",
            solve_imc(
                graph, communities, k=K, solver=MAF(seed=SEED), seed=SEED,
                max_samples=20_000,
            ).selection.seeds,
        ),
        ("HBC heuristic", hbc_seeds(graph, communities, K)),
        ("high-degree accounts", high_degree_seeds(graph, K)),
    ):
        load = evaluate(seeds)
        print(
            f"  {label:<24}{load:8.1f} MW "
            f"({100 * load / total_load:5.1f}% of load)  seeds={sorted(seeds)[:6]}..."
        )
    print(
        "\nhardening guidance: the UBG seed accounts are the highest-"
        "leverage monitoring targets."
    )


if __name__ == "__main__":
    main()
