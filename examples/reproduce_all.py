"""Regenerate every table and figure of the paper in one run.

Runs the full evaluation suite at a configurable scale, prints each
artifact as ASCII (the same renderer the benchmarks use) and archives
everything under ``results/`` — JSON for the raw runs (reloadable via
``repro.experiments.persistence``) and a markdown report.

Run:  python examples/reproduce_all.py [--scale 0.15] [--out results]
"""

import argparse
import json
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    fig4_community_structure,
    fig5_benefit_regular,
    fig6_benefit_bounded,
    fig7_runtime,
    fig8_ubg_ratio,
)
from repro.experiments.persistence import save_runs
from repro.experiments.reporting import ascii_table, format_series
from repro.experiments.tables import table1_text


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--pool-size", type=int, default=600)
    parser.add_argument("--eval-trials", type=int, default=150)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="results")
    args = parser.parse_args()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    config = ExperimentConfig(
        dataset="facebook",
        scale=args.scale,
        pool_size=args.pool_size,
        eval_trials=args.eval_trials,
        seed=args.seed,
    )
    report = ["# Reproduction run", ""]

    def section(title: str, body: str) -> None:
        print(f"\n===== {title} =====\n{body}")
        report.extend([f"## {title}", "", "```", body, "```", ""])

    # Table I ----------------------------------------------------------
    section("Table I — datasets", table1_text(scale=args.scale, seed=args.seed))

    # Fig. 4 -----------------------------------------------------------
    fig4 = fig4_community_structure(base_config=config, size_caps=(4, 8, 16))
    algorithms = sorted(next(iter(fig4.values())))
    rows = [
        [f"{formation}/s={s}"] + [fig4[(formation, s)][a] for a in algorithms]
        for (formation, s) in sorted(fig4)
    ]
    section(
        "Fig. 4 — quality vs formation and size cap (k=10)",
        ascii_table(["instance"] + algorithms, rows),
    )
    (out / "fig4.json").write_text(
        json.dumps(
            {f"{f}/s={s}": values for (f, s), values in fig4.items()},
            indent=2,
            sort_keys=True,
        )
    )

    # Fig. 5 / Fig. 6 ---------------------------------------------------
    for name, driver, extra in (
        ("fig5", fig5_benefit_regular, {}),
        ("fig6", fig6_benefit_bounded, {"candidate_limit": 25}),
    ):
        k_values = (5, 10, 20)
        results = driver(k_values=k_values, base_config=config, **extra)
        series = {
            alg: [run.benefit for run in runs] for alg, runs in results.items()
        }
        section(
            f"{name} — benefit vs k "
            f"({'regular' if name == 'fig5' else 'bounded h=2'})",
            format_series("k", list(k_values), series),
        )
        save_runs(
            results,
            out / f"{name}.json",
            metadata={"scale": args.scale, "seed": args.seed},
        )

    # Fig. 7 -----------------------------------------------------------
    fig7 = fig7_runtime(
        dataset="epinions",
        k_values=(5, 10, 20),
        base_config=config.with_overrides(dataset="epinions"),
        candidate_limit=None,
    )
    runtime_series = {
        alg: [run.runtime_seconds for run in runs] for alg, runs in fig7.items()
    }
    section(
        "fig7 — runtime (s) vs k (epinions-like, h=2)",
        format_series("k", [5, 10, 20], runtime_series),
    )
    save_runs(fig7, out / "fig7.json", metadata={"scale": args.scale})

    # Fig. 8 -----------------------------------------------------------
    fig8 = fig8_ubg_ratio(k_values=(2, 5, 10, 25), base_config=config)
    section(
        "fig8 — UBG sandwich ratio vs k",
        format_series("k", [2, 5, 10, 25], fig8),
    )
    (out / "fig8.json").write_text(json.dumps(fig8, indent=2, sort_keys=True))

    (out / "report.md").write_text("\n".join(report))
    print(f"\nall artifacts written to {out}/")


if __name__ == "__main__":
    main()
