"""Budgeted viral marketing: influential users charge more.

Extension scenario (the paper's cost-aware future-work direction, cf.
its reference to cost-aware targeted viral marketing): each user has a
seeding cost growing with their out-degree — celebrities demand bigger
incentives — and the marketer has a fixed budget B instead of a seat
count k. The cost-aware sandwich greedy (BudgetedUBG) decides whether
a few expensive hubs or many cheap community insiders convert more
workgroups.

Run:  python examples/budgeted_marketing.py
"""

from repro import (
    BenefitEvaluator,
    assign_weighted_cascade,
    build_structure,
    fractional_thresholds,
    planted_partition_graph,
)
from repro.core.budgeted import (
    BudgetedUBG,
    degree_proportional_costs,
    uniform_costs,
)
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler

SEED = 31
BUDGET = 12.0


def main() -> None:
    sizes = [7] * 30
    graph, blocks = planted_partition_graph(
        sizes, p_in=0.45, p_out=0.012, directed=True, seed=SEED
    )
    assign_weighted_cascade(graph)
    communities = build_structure(
        blocks, size_cap=None, threshold_policy=fractional_thresholds(0.5)
    )
    print(
        f"market: {graph.num_nodes} users, {communities.r} workgroups, "
        f"budget B = {BUDGET:g}"
    )

    pool = RICSamplePool(RICSampler(graph, communities, seed=SEED))
    pool.grow(4000)
    evaluate = BenefitEvaluator(graph, communities, num_trials=1000, seed=SEED)
    solver = BudgetedUBG()

    print(f"\n{'cost model':<28}{'seeds':>6}{'spent':>8}{'c(S)':>9}  arm")
    for label, costs in (
        ("uniform (cost 1 each)", uniform_costs(graph.nodes())),
        (
            "degree-proportional",
            degree_proportional_costs(graph, base=0.5, per_degree=0.25),
        ),
        (
            "hubs 5x surcharge",
            {
                v: (5.0 if graph.out_degree(v) > 8 else 1.0)
                for v in graph.nodes()
            },
        ),
    ):
        result = solver.solve(pool, costs, BUDGET)
        benefit = evaluate(result.seeds)
        print(
            f"{label:<28}{len(result.seeds):>6}"
            f"{result.metadata['spent']:>8.1f}{benefit:>9.1f}"
            f"  {result.metadata['arm']}"
        )

    print(
        "\nwith degree-proportional pricing the solver shifts from hub "
        "seeding to cheaper community insiders while keeping most of "
        "the converted-group benefit."
    )


if __name__ == "__main__":
    main()
