"""Collaborative viral marketing (the paper's first motivating setting).

A product is only valuable in a *group* context (e.g. a team messaging
tool): a workgroup adopts it only once enough of its members are
influenced. Workgroups are disjoint communities; the marketer has k free
licenses to hand out and wants to maximize the number of adopting
groups, weighted by group size (seats sold).

The script contrasts the community-aware UBG seeds against classic
influence maximization — showing IM's weakness the paper highlights:
IM scatters influence widely, leaving many groups just *below* their
adoption threshold.

Run:  python examples/collaborative_marketing.py
"""

from repro import (
    UBG,
    BenefitEvaluator,
    assign_weighted_cascade,
    build_structure,
    fractional_thresholds,
    im_seeds,
    planted_partition_graph,
    solve_imc,
)

SEED = 11
K = 12


def main() -> None:
    # A company-like network: 40 workgroups of 6-10 people, dense inside
    # (colleagues), sparse across (cross-team contacts).
    sizes = [6 + (i % 5) for i in range(40)]
    graph, blocks = planted_partition_graph(
        sizes, p_in=0.45, p_out=0.01, directed=True, seed=SEED
    )
    assign_weighted_cascade(graph)
    print(f"org network: {graph.num_nodes} people, {graph.num_edges} ties, "
          f"{len(blocks)} workgroups")

    # A group adopts when half its members are influenced; the benefit
    # of an adopting group is its seat count.
    communities = build_structure(
        blocks, size_cap=None, threshold_policy=fractional_thresholds(0.5)
    )
    evaluate = BenefitEvaluator(graph, communities, num_trials=1000, seed=SEED)

    # Community-aware seeding (IMC with UBG).
    imc = solve_imc(
        graph, communities, k=K, solver=UBG(), seed=SEED, max_samples=20_000
    )
    imc_benefit = evaluate(imc.selection.seeds)

    # Classic IM seeding (maximize raw spread, ignore groups).
    im = im_seeds(graph, K, seed=SEED, max_samples=20_000)
    im_benefit = evaluate(im)

    print(f"\n{'strategy':<28}{'expected seats from adopting groups':>38}")
    print(f"{'IMC (UBG, group-aware)':<28}{imc_benefit:>38.1f}")
    print(f"{'classic IM (spread only)':<28}{im_benefit:>38.1f}")
    ratio = imc_benefit / im_benefit if im_benefit > 0 else float("inf")
    print(f"\ncommunity-aware seeding gains {ratio:.2f}x over classic IM")
    overlap = len(set(imc.selection.seeds) & set(im))
    print(f"seed overlap between the strategies: {overlap}/{K}")


if __name__ == "__main__":
    main()
