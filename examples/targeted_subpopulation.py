"""Targeted seeding: only opted-in users can be seeded.

Real campaigns cannot seed arbitrary users — only those who opted into
a partnership program (or, for the defensive reading, only accounts an
auditor may instrument). Every solver in this library accepts a
``candidates`` restriction; this example measures the price of
increasingly thin candidate pools and shows the solver re-routing its
budget through the eligible users.

Run:  python examples/targeted_subpopulation.py
"""

from repro import (
    UBG,
    BenefitEvaluator,
    assign_weighted_cascade,
    build_structure,
    fractional_thresholds,
    planted_partition_graph,
)
from repro.rng import make_rng
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler

SEED = 47
K = 10


def main() -> None:
    graph, blocks = planted_partition_graph(
        [8] * 25, p_in=0.4, p_out=0.01, directed=True, seed=SEED
    )
    assign_weighted_cascade(graph)
    communities = build_structure(
        blocks, size_cap=None, threshold_policy=fractional_thresholds(0.5)
    )
    pool = RICSamplePool(RICSampler(graph, communities, seed=SEED))
    pool.grow(4000)
    evaluate = BenefitEvaluator(graph, communities, num_trials=800, seed=SEED)
    rng = make_rng(SEED)

    n = graph.num_nodes
    print(f"network: {n} users, {communities.r} communities, k={K}\n")
    print(f"{'opt-in rate':<14}{'eligible':>9}{'c(S)':>9}{'vs free':>9}")

    free = UBG().solve(pool, K)
    free_benefit = evaluate(free.seeds)
    print(f"{'100% (free)':<14}{n:>9}{free_benefit:>9.1f}{'100%':>9}")

    for rate in (0.5, 0.25, 0.1, 0.05):
        eligible = frozenset(rng.sample(range(n), max(K, int(rate * n))))
        result = UBG(candidates=eligible).solve(pool, K)
        benefit = evaluate(result.seeds)
        assert set(result.seeds) <= eligible
        print(
            f"{f'{rate:.0%} opt-in':<14}{len(eligible):>9}{benefit:>9.1f}"
            f"{benefit / free_benefit:>9.0%}"
        )

    print(
        "\neven a 10% opt-in pool keeps most of the unrestricted value — "
        "RIC coverage lets the solver find eligible users that reach the "
        "same communities through different paths."
    )


if __name__ == "__main__":
    main()
