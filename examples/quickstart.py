"""Quickstart: solve IMC end-to-end on a synthetic Facebook-like network.

Pipeline: load a dataset stand-in -> detect communities with Louvain ->
apply the paper's threshold/benefit policies -> run the IMCAF framework
with the UBG solver -> evaluate the returned seed set by Monte Carlo.

Run:  python examples/quickstart.py
"""

from repro import (
    MAF,
    UBG,
    BenefitEvaluator,
    build_structure,
    constant_thresholds,
    load_dataset,
    louvain_communities,
    solve_imc,
)

SEED = 42
K = 10


def main() -> None:
    # 1. A Facebook-like social network (synthetic stand-in, ~190 nodes
    #    at this scale) with weighted-cascade influence probabilities.
    dataset = load_dataset("facebook", scale=0.25, seed=SEED)
    graph = dataset.graph
    print(f"network: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # 2. Communities via Louvain, capped at size 8 (the paper's s=8),
    #    with bounded activation thresholds h_i = 2 and benefit = |C_i|.
    blocks = louvain_communities(graph, seed=SEED)
    communities = build_structure(
        blocks, size_cap=8, threshold_policy=constant_thresholds(2)
    )
    print(f"communities: r={communities.r}, total benefit b={communities.total_benefit:g}")

    # 3. Solve IMC with the IMCAF framework. UBG is the paper's
    #    best-quality solver; swap in MAF() for the fastest one.
    result = solve_imc(
        graph,
        communities,
        k=K,
        solver=UBG(),
        epsilon=0.2,
        delta=0.2,
        seed=SEED,
        max_samples=20_000,
    )
    seeds = result.selection.seeds
    print(f"UBG seeds (k={K}): {sorted(seeds)}")
    print(
        f"stopped by {result.stopped_by} after {result.num_samples} RIC "
        f"samples ({result.iterations} stop stages)"
    )
    print(f"sandwich ratio c(S_nu)/nu(S_nu): "
          f"{result.selection.metadata.get('sandwich_ratio', float('nan')):.3f}")

    # 4. Independent Monte-Carlo evaluation of the expected benefit.
    evaluate = BenefitEvaluator(graph, communities, num_trials=1000, seed=SEED)
    benefit = evaluate(seeds)
    print(f"expected benefit of influenced communities c(S) ~= {benefit:.2f} "
          f"(of total b={communities.total_benefit:g})")

    # 5. Compare with the fast MAF solver on the same instance.
    maf_result = solve_imc(
        graph, communities, k=K, solver=MAF(seed=SEED), seed=SEED,
        max_samples=20_000,
    )
    print(f"MAF benefit: {evaluate(maf_result.selection.seeds):.2f}")


if __name__ == "__main__":
    main()
